"""The shard fleet: partitioning, scatter/gather routing, shard-owner pools.

Covers the sharding PR's acceptance surface:

* ``partition_store`` splits the compact arrays by contiguous vertex
  ranges into global-shaped per-shard stores, for the undirected AND
  directed representations, and the shard files round-trip through
  ``write_shard``/``read_shard`` checksummed;
* fleet manifests are built and fenced only by the ``core.store``
  helpers (schema errors are typed and specific);
* the parity matrix: ``k ∈ {1, 2, 4, 7}`` shards are **bit-identical**
  to single-segment serving on every bundled generator family, for both
  orientations, through the store-level gather evaluator and through
  real shard-owning worker pools — including the degraded path where a
  shard's only owner has been retired;
* partial publish failures roll back every already-published segment
  and the spill directory (satellite of the ``/dev/shm`` leak gate);
* the LRU point cache sits *above* the shard router: repeated pairs hit
  in the sync and async services alike, never re-entering the fleet.
"""

from __future__ import annotations

import os
import signal
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.api import QueryService, open_index
from repro.core import store as store_module
from repro.core.index import PSPCIndex
from repro.core.store import (
    build_fleet_manifest,
    check_fleet_manifest,
    is_fleet_manifest,
    partition_store,
    read_shard,
    shard_bounds,
    shard_of,
    write_shard,
)
from repro.digraph.digraph import DiGraph
from repro.digraph.index import DirectedSPCIndex
from repro.errors import PersistenceError, ServeError
from repro.graph.generators import (
    barabasi_albert,
    grid_road_network,
    powerlaw_cluster,
    watts_strogatz,
)
from repro.serve import (
    AsyncQueryService,
    GatherEvaluator,
    ShmIndexSegment,
    ShmSegmentFleet,
    WorkerPool,
    home_shards,
    split_by_home_shard,
)

#: One small instance per bundled generator family (mirrors test_serve).
GENERATORS = {
    "barabasi_albert": lambda: barabasi_albert(120, 3, seed=5),
    "watts_strogatz": lambda: watts_strogatz(90, 6, 0.2, seed=6),
    "powerlaw_cluster": lambda: powerlaw_cluster(110, 3, 0.5, seed=7),
    "grid_road_network": lambda: grid_road_network(9, 9, extra_edges=8, seed=8),
}

#: the shard counts of the parity matrix: trivial, even, power-of-two,
#: and a count that does not divide any generator's vertex count
SHARD_COUNTS = (1, 2, 4, 7)


def _random_pairs(n: int, count: int, seed: int = 3) -> list[tuple[int, int]]:
    rng = np.random.default_rng(seed)
    return [(int(s), int(t)) for s, t in rng.integers(n, size=(count, 2))]


@pytest.fixture(scope="module", params=sorted(GENERATORS))
def generator_index(request) -> PSPCIndex:
    return PSPCIndex.build(GENERATORS[request.param]())


@pytest.fixture(scope="module")
def served_index() -> PSPCIndex:
    """One shared index for the process-spawning tests."""
    return PSPCIndex.build(barabasi_albert(150, 3, seed=11), num_landmarks=10)


@pytest.fixture(scope="module")
def directed_index() -> DirectedSPCIndex:
    rng = np.random.default_rng(17)
    edges = [(int(u), int(v)) for u, v in rng.integers(60, size=(150, 2)) if u != v]
    return DirectedSPCIndex.build(DiGraph(60, edges))


def _cold_choice(k: int) -> tuple[int, ...]:
    """Keep the last shard out of shared memory whenever there is one."""
    return (k - 1,) if k > 1 else ()


# ----------------------------------------------------------------------
# partitioning: bounds, slicing, shard files
# ----------------------------------------------------------------------
class TestPartitionStore:
    def test_bounds_cover_and_are_monotone(self):
        bounds = shard_bounds(120, 7)
        assert bounds[0] == 0 and bounds[-1] == 120
        assert np.all(np.diff(bounds) >= 1)
        assert shard_bounds(8, 8).tolist() == list(range(9))

    def test_bounds_validation(self):
        with pytest.raises(PersistenceError):
            shard_bounds(10, 0)
        with pytest.raises(PersistenceError):
            shard_bounds(5, 6)

    def test_shard_of_routes_every_vertex(self):
        bounds = shard_bounds(120, 4)
        owners = shard_of(bounds, np.arange(120))
        assert owners.min() == 0 and owners.max() == 3
        # ownership is exactly the half-open ranges of the bounds
        for shard in range(4):
            lo, hi = int(bounds[shard]), int(bounds[shard + 1])
            assert np.all(owners[lo:hi] == shard)

    def test_shards_are_global_shaped_and_cover_the_labels(self, generator_index):
        store = generator_index.store
        shards, bounds = partition_store(store, 4)
        assert len(shards) == 4
        total = 0
        for shard, part in enumerate(shards):
            lo, hi = int(bounds[shard]), int(bounds[shard + 1])
            # global-shaped: same n, empty label slices outside [lo, hi)
            assert part.n == store.n
            assert part.indptr[lo] == 0
            total += int(part.indptr[-1])
            for v in range(lo, hi):
                np.testing.assert_array_equal(
                    part.hubs[part.indptr[v] : part.indptr[v + 1]],
                    store.hubs[store.indptr[v] : store.indptr[v + 1]],
                )
        assert total == len(store.hubs)

    def test_local_pairs_answer_on_the_bare_shard(self, generator_index):
        store = generator_index.store
        shards, bounds = partition_store(store, 2)
        lo, hi = int(bounds[0]), int(bounds[1])
        rng = np.random.default_rng(9)
        pairs = [
            (int(s), int(t))
            for s, t in rng.integers(low=lo, high=hi, size=(40, 2))
        ]
        assert shards[0].query_batch(pairs) == store.query_batch(pairs)

    def test_shard_file_round_trip_checksummed(self, generator_index, tmp_path):
        store = generator_index.store
        shards, bounds = partition_store(store, 2)
        path = tmp_path / "shard-000.npz"
        entry = write_shard(
            path, shards[0],
            vertex_lo=int(bounds[0]), vertex_hi=int(bounds[1]),
            shard_index=0, shard_count=2,
        )
        assert entry["nbytes"] > 0
        loaded, meta = read_shard(path, mmap=True, verify=True)
        assert meta["shard_index"] == 0 and meta["shard_count"] == 2
        assert loaded == shards[0]
        store_module.close_store(loaded)

    def test_shard_file_opens_through_open_index(self, generator_index, tmp_path):
        store = generator_index.store
        shards, bounds = partition_store(store, 3)
        path = tmp_path / "s1.npz"
        write_shard(
            path, shards[1],
            vertex_lo=int(bounds[1]), vertex_hi=int(bounds[2]),
            shard_index=1, shard_count=3,
        )
        facade = open_index(path)
        lo, hi = int(bounds[1]), int(bounds[2])
        pairs = [(lo, hi - 1), (lo + 1, lo + 2)]
        assert facade.query_batch(pairs) == store.query_batch(pairs)

    def test_directed_partition_keeps_both_sides(self, directed_index):
        labels = directed_index.labels
        shards, bounds = partition_store(labels, 3)
        for shard, part in enumerate(shards):
            lo = int(bounds[shard])
            for side in ("in", "out"):
                indptr = getattr(part, f"indptr_{side}")
                full = getattr(labels, f"indptr_{side}")
                assert indptr[lo] == 0
                assert len(getattr(part, f"hubs_{side}")) == int(
                    full[int(bounds[shard + 1])] - full[lo]
                )


# ----------------------------------------------------------------------
# fleet manifests: only the canonical helpers speak the schema
# ----------------------------------------------------------------------
class TestFleetManifest:
    def _manifest(self, n: int = 10, k: int = 2) -> dict:
        bounds = shard_bounds(n, k)
        shards = [
            {
                "shard": i,
                "vertex_lo": int(bounds[i]),
                "vertex_hi": int(bounds[i + 1]),
                "nbytes": 100,
                "checksum": 0,
                "npz": f"/tmp/s{i}.npz",
            }
            for i in range(k)
        ]
        return build_fleet_manifest(
            n=n, store_kind="compact", bounds=bounds, shards=shards
        )

    def test_build_and_json_round_trip(self):
        manifest = self._manifest()
        assert is_fleet_manifest(manifest)
        import json

        parsed = check_fleet_manifest(json.dumps(manifest))
        assert parsed["bounds"] == manifest["bounds"]

    def test_extra_keys_tolerated(self):
        manifest = dict(self._manifest(), hot=[0])
        assert check_fleet_manifest(manifest)["hot"] == [0]

    def test_format_fence(self):
        with pytest.raises(PersistenceError):
            check_fleet_manifest(dict(self._manifest(), format="something-else"))
        with pytest.raises(PersistenceError):
            check_fleet_manifest(dict(self._manifest(), version=99))

    def test_bounds_must_cover_and_be_monotone(self):
        manifest = self._manifest()
        with pytest.raises(PersistenceError):
            check_fleet_manifest(dict(manifest, bounds=[0, 7, 10, 9]))
        with pytest.raises(PersistenceError):
            check_fleet_manifest(dict(manifest, bounds=[1, 5, 10]))

    def test_shard_entries_must_match_bounds(self):
        manifest = self._manifest()
        broken = [dict(entry) for entry in manifest["shards"]]
        broken[1]["vertex_lo"] = 3
        with pytest.raises(PersistenceError):
            check_fleet_manifest(dict(manifest, shards=broken))
        with pytest.raises(PersistenceError):
            check_fleet_manifest(dict(manifest, shards=manifest["shards"][:1]))

    def test_not_a_fleet(self):
        assert not is_fleet_manifest({"format": "repro-shm-segment-v1"})
        assert not is_fleet_manifest("nope")


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
class TestRouting:
    def test_home_shard_is_min_vertex_owner(self):
        bounds = shard_bounds(100, 4)
        pairs = np.array([[10, 80], [80, 10], [99, 0], [30, 30]], dtype=np.int64)
        homes = home_shards(bounds, pairs)
        assert homes.tolist() == [0, 0, 0, 1]

    def test_split_preserves_positions(self):
        bounds = shard_bounds(100, 4)
        rng = np.random.default_rng(12)
        pairs = rng.integers(100, size=(64, 2)).astype(np.int64)
        groups = split_by_home_shard(bounds, pairs)
        seen = np.concatenate([positions for _, positions in groups])
        assert sorted(seen.tolist()) == list(range(64))
        homes = home_shards(bounds, pairs)
        for shard, positions in groups:
            assert np.all(homes[positions] == shard)


# ----------------------------------------------------------------------
# the parity matrix: k shards ≡ one segment, bit for bit
# ----------------------------------------------------------------------
class TestShardParity:
    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_gather_evaluator_matches_single_segment(self, generator_index, k):
        index = generator_index
        pairs = _random_pairs(index.n, 200)
        expected = index.query_batch(pairs)
        with ShmSegmentFleet.publish(index, shards=k, cold=_cold_choice(k)) as fleet:
            evaluator = GatherEvaluator(fleet)
            assert evaluator.query_batch(pairs) == expected
            if k > 1:
                # the fleet genuinely exceeds what this handle has mapped hot
                assert fleet.attached_bytes < fleet.total_label_bytes

    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_directed_gather_matches_single_segment(self, directed_index, k):
        index = directed_index
        pairs = _random_pairs(index.n, 200, seed=21)
        expected = index.query_batch(pairs)
        with ShmSegmentFleet.publish(index, shards=k, cold=_cold_choice(k)) as fleet:
            assert GatherEvaluator(fleet).query_batch(pairs) == expected

    def test_sharded_pool_matches_single_segment(self, served_index):
        pairs = _random_pairs(served_index.n, 300)
        expected = served_index.query_batch(pairs)
        with WorkerPool(served_index, workers=2, shards=4, cold=(3,)) as pool:
            assert pool.query_batch(pairs) == expected
            stats = pool.stats()
            assert stats["fleet"]["shards"] == 4
            assert sum(s["queries"] for s in stats["fleet"]["per_shard"]) > 0
            # every shard has exactly one owner even with workers < shards
            owned = sorted(
                shard for row in stats["per_worker"] for shard in row["shards"]
            )
            assert owned == [0, 1, 2, 3]

    def test_more_workers_than_shards_replicates(self, served_index):
        pairs = _random_pairs(served_index.n, 120, seed=7)
        expected = served_index.query_batch(pairs)
        with WorkerPool(served_index, workers=5, shards=2) as pool:
            assert pool.query_batch(pairs) == expected

    def test_directed_sharded_pool_matches(self, directed_index):
        pairs = _random_pairs(directed_index.n, 200, seed=31)
        expected = directed_index.query_batch(pairs)
        with WorkerPool(directed_index, workers=2, shards=4, cold=(3,)) as pool:
            assert pool.directed is True
            assert pool.query_batch(pairs) == expected

    def test_retired_shard_owner_stays_bit_identical(self, served_index):
        # kill the sole owner of shard 0 with no respawn budget: its
        # batches reroute to the parent's in-process gather evaluator,
        # results stay bit-identical, and the degradation is observable
        # per shard
        pairs = _random_pairs(served_index.n, 160, seed=13)
        expected = served_index.query_batch(pairs)
        with WorkerPool(
            served_index, workers=3, shards=3, max_respawns=0
        ) as pool:
            victim = next(s for s in pool._slots if 0 in s.shards)
            os.kill(victim.pid, signal.SIGKILL)
            for _ in range(2):
                assert pool.query_batch(pairs) == expected
            assert pool.health() == "degraded"
            states = pool.shard_states()
            assert states[0]["live_owners"] == 0
            assert states[0]["fallback_queries"] > 0
            assert all(s["live_owners"] == 1 for s in states[1:])


# ----------------------------------------------------------------------
# publish failure: no half-published fleets
# ----------------------------------------------------------------------
class TestPartialPublishRollback:
    def _spill_dirs(self) -> set[str]:
        tmp = Path(tempfile.gettempdir())
        return {p.name for p in tmp.glob("repro-fleet-*")}

    def test_failed_shard_publish_unlinks_predecessors(
        self, served_index, monkeypatch
    ):
        real_publish = ShmIndexSegment.publish.__func__
        calls = {"count": 0}

        def failing(cls, store, name=None):
            calls["count"] += 1
            if calls["count"] == 3:
                raise ServeError("synthetic publish failure on shard 2")
            return real_publish(cls, store, name=name)

        monkeypatch.setattr(
            ShmIndexSegment, "publish", classmethod(failing)
        )
        shm_before = set(os.listdir("/dev/shm"))
        spill_before = self._spill_dirs()
        with pytest.raises(ServeError, match="synthetic publish failure"):
            # reprolint: disable=R001 (the publish raises; rollback-on-failure is the subject under test)
            ShmSegmentFleet.publish(served_index, shards=4)
        # shards 0 and 1 were live when shard 2 failed: both unlinked,
        # and the spill directory is gone with them
        assert set(os.listdir("/dev/shm")) == shm_before
        assert self._spill_dirs() == spill_before

    def test_failed_attach_detaches_predecessors(self, served_index):
        with ShmSegmentFleet.publish(served_index, shards=3) as fleet:
            broken = dict(fleet.manifest, hot=[0, 1, 2])
            entries = [dict(e) for e in broken["shards"]]
            entries[2] = dict(
                entries[2],
                shm=dict(entries[2]["shm"], shm_name="repro-seg-nonexistent"),
            )
            broken["shards"] = entries
            with pytest.raises(ServeError):
                # reprolint: disable=R001 (the attach raises; partial-attach rollback is the subject under test)
                ShmSegmentFleet.attach(broken)
            # the owner's segments must still be attachable afterwards:
            # the failed attach released its partial mappings
            twin = ShmSegmentFleet.attach(fleet.manifest, hot=(0, 1))
            try:
                assert twin.hot_shards == (0, 1)
            finally:
                twin.close()


# ----------------------------------------------------------------------
# the LRU point cache sits above the router
# ----------------------------------------------------------------------
class TestCacheAboveRouter:
    def test_sync_service_hits_on_sharded_pool(self, served_index):
        with WorkerPool(served_index, workers=2, shards=2) as pool:
            service = QueryService(pool, batch_size=4, cache_size=16)
            expected = served_index.query(3, 140)
            for _ in range(5):
                assert service.query(3, 140) == expected
            # undirected keys canonicalise: the reversed pair hits too
            reverse = service.query(140, 3)
            assert (reverse.dist, reverse.count) == (expected.dist, expected.count)
            stats = service.stats()
            assert stats["cache_misses"] == 1
            assert stats["cache_hits"] == 5
            service.close()

    def test_async_service_hits_on_sharded_pool(self, served_index):
        import asyncio

        async def main():
            service = AsyncQueryService(
                served_index, workers=2, shards=2, batch_size=4, cache_size=16
            )
            try:
                expected = served_index.query(7, 120)
                for _ in range(4):
                    assert await service.submit(7, 120) == expected
                reverse = await service.submit(120, 7)
                assert (reverse.dist, reverse.count) == (
                    expected.dist, expected.count
                )
                return service.stats()
            finally:
                await service.aclose()

        stats = asyncio.run(main())
        assert stats["cache_misses"] == 1
        assert stats["cache_hits"] == 4
