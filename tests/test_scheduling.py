"""Unit tests for schedule plans and makespan simulation (Section III-F)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scheduling import (
    DynamicCostSchedule,
    StaticNodeOrderSchedule,
    cost_function_estimate,
    get_schedule,
)
from repro.errors import SchedulingError


@pytest.fixture
def skewed_costs() -> np.ndarray:
    """A workload shaped like Example 3: early ranks cheap, middle heavy."""
    rng = np.random.default_rng(4)
    costs = rng.integers(1, 10, size=64).astype(np.float64)
    costs[20:28] = 500.0
    return costs


class TestStaticSchedule:
    def test_single_thread_is_total(self, skewed_costs):
        plan = StaticNodeOrderSchedule()
        assert plan.makespan(skewed_costs, 1) == pytest.approx(float(skewed_costs.sum()))

    def test_makespan_at_least_mean_load(self, skewed_costs):
        plan = StaticNodeOrderSchedule()
        for t in (2, 4, 8):
            assert plan.makespan(skewed_costs, t) >= float(skewed_costs.sum()) / t

    def test_contiguous_blocks(self):
        plan = StaticNodeOrderSchedule()
        costs = np.array([10.0, 10.0, 1.0, 1.0])
        # blocks [0,1] and [2,3] -> loads 20 and 2
        assert plan.makespan(costs, 2) == 20.0

    def test_more_threads_than_tasks(self):
        plan = StaticNodeOrderSchedule()
        assert plan.makespan(np.array([3.0, 7.0]), 5) == 7.0

    def test_empty_costs(self):
        assert StaticNodeOrderSchedule().makespan(np.array([]), 4) == 0.0

    def test_invalid_threads(self, skewed_costs):
        with pytest.raises(SchedulingError):
            StaticNodeOrderSchedule().makespan(skewed_costs, 0)


class TestDynamicSchedule:
    def test_single_thread_is_total(self, skewed_costs):
        plan = DynamicCostSchedule()
        assert plan.makespan(skewed_costs, 1) == pytest.approx(float(skewed_costs.sum()))

    def test_beats_or_ties_static(self, skewed_costs):
        static = StaticNodeOrderSchedule()
        dynamic = DynamicCostSchedule()
        for t in (2, 4, 8, 16):
            assert dynamic.makespan(skewed_costs, t) <= static.makespan(skewed_costs, t)

    def test_perfect_balance_when_divisible(self):
        plan = DynamicCostSchedule()
        costs = np.full(16, 5.0)
        assert plan.makespan(costs, 4) == 20.0

    def test_lower_bound_is_max_task(self, skewed_costs):
        plan = DynamicCostSchedule()
        assert plan.makespan(skewed_costs, 64) >= float(skewed_costs.max())

    def test_monotone_in_threads(self, skewed_costs):
        plan = DynamicCostSchedule()
        spans = [plan.makespan(skewed_costs, t) for t in (1, 2, 4, 8, 16)]
        assert all(a >= b for a, b in zip(spans, spans[1:]))

    def test_priority_estimates_steer_order(self):
        plan = DynamicCostSchedule()
        costs = np.array([100.0, 1.0, 1.0, 1.0])
        # misleading priority puts the giant task last -> worse balance
        misleading = np.array([0.0, 3.0, 2.0, 1.0])
        good = plan.makespan(costs, 2)
        bad = plan.makespan(costs, 2, priority=misleading)
        assert good <= bad


class TestCostFunction:
    def test_estimate_tracks_neighbor_labels(self):
        sizes = np.array([10, 0, 5])
        degrees = np.array([2, 1, 4])
        est = cost_function_estimate(sizes, degrees)
        assert est[0] > est[2] > est[1]

    def test_registry(self):
        assert get_schedule("static").name == "static"
        assert get_schedule("dynamic").name == "dynamic"
        with pytest.raises(SchedulingError):
            get_schedule("quantum")
