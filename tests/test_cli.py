"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graph.generators import barabasi_albert
from repro.graph.io import write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    write_edge_list(barabasi_albert(60, 2, seed=21), path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_choices(self):
        args = build_parser().parse_args(["bench", "fig10b"])
        assert args.experiment == "fig10b"

    def test_unknown_bench_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])


class TestInfo:
    def test_info_from_file(self, graph_file, capsys):
        assert main(["info", "--graph", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "60" in out

    def test_info_without_source_fails(self, capsys):
        assert main(["info"]) == 2
        assert "error" in capsys.readouterr().err


class TestBuildAndQuery:
    def test_round_trip(self, graph_file, tmp_path, capsys):
        index_path = tmp_path / "idx.pkl"
        assert main([
            "build", "--graph", str(graph_file), "--out", str(index_path),
            "--ordering", "degree", "--landmarks", "5",
        ]) == 0
        assert index_path.exists()
        assert main(["query", "--index", str(index_path), "0,1", "3,7"]) == 0
        out = capsys.readouterr().out
        assert "dist" in out

    def test_hpspc_builder_flag(self, graph_file, tmp_path):
        index_path = tmp_path / "idx.pkl"
        assert main([
            "build", "--graph", str(graph_file), "--out", str(index_path),
            "--builder", "hpspc",
        ]) == 0

    def test_bad_query_syntax(self, graph_file, tmp_path, capsys):
        index_path = tmp_path / "idx.pkl"
        main(["build", "--graph", str(graph_file), "--out", str(index_path)])
        assert main(["query", "--index", str(index_path), "zero-one"]) == 2
        assert "error" in capsys.readouterr().err


class TestBench:
    def test_small_bench_runs(self, capsys):
        # fig10b on the default keys is the cheapest experiment
        assert main(["bench", "fig10b", "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "static_s" in out
        assert "FB" in out


class TestAudit:
    def test_audit_clean_index(self, graph_file, tmp_path, capsys):
        index_path = tmp_path / "idx.pkl"
        main(["build", "--graph", str(graph_file), "--out", str(index_path)])
        assert main([
            "audit", "--graph", str(graph_file), "--index", str(index_path),
            "--deep", "--samples", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "structure audit: ok" in out
        assert "canonical-entry audit: ok" in out

    def test_audit_rejects_mismatched_graph(self, graph_file, tmp_path, capsys):
        from repro.graph.generators import path_graph
        from repro.graph.io import write_edge_list

        index_path = tmp_path / "idx.pkl"
        main(["build", "--graph", str(graph_file), "--out", str(index_path)])
        other = tmp_path / "other.txt"
        write_edge_list(path_graph(5), other)
        assert main(["audit", "--graph", str(other), "--index", str(index_path)]) == 2
        assert "error" in capsys.readouterr().err


class TestBenchPlot:
    def test_plot_flag_renders_chart(self, capsys):
        assert main(["bench", "fig10b", "--threads", "4", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "#" in out  # bar chart rendered
