"""Smoke tests: every shipped example must run cleanly end to end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they do"
