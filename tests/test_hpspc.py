"""Unit tests for the HP-SPC sequential baseline builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hpspc import build_hpspc, hpspc_index
from repro.core.queries import spc_query

# this module deliberately exercises the deprecated function-based builder
# surface (kept as shims for compatibility); the facade path is covered by
# test_api.py, and the shims' warning itself is asserted there
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")
from repro.graph.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.graph.graph import Graph
from repro.graph.traversal import spc_pair
from repro.ordering.base import VertexOrder, identity_order
from repro.ordering.degree import degree_order


class TestCanonicalStructure:
    def test_top_vertex_labels_only_itself(self, social_graph):
        order = degree_order(social_graph)
        index = hpspc_index(social_graph, order)
        top = int(order.order[0])
        assert index.entries[top] == [(0, 0, 1)]

    def test_every_vertex_has_self_label(self, social_graph):
        order = degree_order(social_graph)
        index = hpspc_index(social_graph, order)
        for v in range(social_graph.n):
            rank_v = int(order.rank[v])
            assert (rank_v, 0, 1) in index.entries[v]

    def test_hubs_always_outrank_vertex(self, social_graph):
        order = degree_order(social_graph)
        index = hpspc_index(social_graph, order)
        for v, lst in enumerate(index.entries):
            for hub_rank, _, _ in lst:
                assert hub_rank <= int(order.rank[v])

    def test_labels_sorted_by_hub_rank(self, social_graph):
        index = hpspc_index(social_graph, degree_order(social_graph))
        for lst in index.entries:
            ranks = [h for h, _, _ in lst]
            assert ranks == sorted(ranks)

    def test_label_distances_are_exact(self, diamond):
        order = degree_order(diamond)
        index = hpspc_index(diamond, order)
        for v, lst in enumerate(index.entries):
            for hub_rank, dist, _ in lst:
                hub = int(order.order[hub_rank])
                assert dist == spc_pair(diamond, v, hub)[0]


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path_graph(8),
            lambda: cycle_graph(9),
            lambda: star_graph(7),
            lambda: complete_graph(6),
        ],
        ids=["path", "cycle", "star", "complete"],
    )
    def test_all_pairs_match_bfs(self, graph_factory):
        graph = graph_factory()
        index = hpspc_index(graph, degree_order(graph))
        for s in range(graph.n):
            for t in range(graph.n):
                result = spc_query(index, s, t)
                assert (result.dist, result.count) == spc_pair(graph, s, t)

    def test_identity_order_also_exact(self, social_graph):
        # a bad order inflates the index but must not change answers
        index = hpspc_index(social_graph, identity_order(social_graph))
        rng = np.random.default_rng(5)
        for _ in range(50):
            s, t = (int(x) for x in rng.integers(social_graph.n, size=2))
            result = spc_query(index, s, t)
            assert (result.dist, result.count) == spc_pair(social_graph, s, t)

    def test_disconnected_graph(self, two_components):
        index = hpspc_index(two_components, degree_order(two_components))
        assert spc_query(index, 0, 3).count == 0
        assert spc_query(index, 3, 4).count == 1

    def test_weighted_graph(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)], vertex_weights=[1, 2, 3, 1])
        index = hpspc_index(g, degree_order(g))
        # paths 0-1-3 (weight 2) and 0-2-3 (weight 3)
        result = spc_query(index, 0, 3)
        assert (result.dist, result.count) == (2, 5)


class TestStats:
    def test_stats_recorded(self, social_graph):
        index, stats = build_hpspc(social_graph, degree_order(social_graph))
        assert stats.builder == "hpspc"
        assert stats.total_entries == index.total_entries()
        assert stats.phase("construction") > 0.0
        assert stats.pruned_by_query > 0

    def test_better_order_prunes_to_smaller_index(self, social_graph):
        good = hpspc_index(social_graph, degree_order(social_graph))
        bad_order = VertexOrder.from_order(
            degree_order(social_graph).order[::-1].copy(), social_graph.n, "worst"
        )
        bad = hpspc_index(social_graph, bad_order)
        assert good.total_entries() < bad.total_entries()
