"""Unit tests for the BFS oracles (distances and shortest-path counting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import VertexError
from repro.graph.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.graph.graph import Graph
from repro.graph.traversal import (
    UNREACHABLE,
    bfs_counting,
    bfs_distances,
    distance_pair,
    spc_pair,
)


class TestBfsDistances:
    def test_path_graph(self):
        dist = bfs_distances(path_graph(5), 0)
        assert list(dist) == [0, 1, 2, 3, 4]

    def test_unreachable_marked(self, two_components):
        dist = bfs_distances(two_components, 0)
        assert dist[3] == UNREACHABLE
        assert dist[4] == UNREACHABLE

    def test_source_out_of_range(self, triangle):
        with pytest.raises(VertexError):
            bfs_distances(triangle, 9)


class TestBfsCounting:
    def test_source_counts_itself_once(self, triangle):
        dist, count = bfs_counting(triangle, 0)
        assert dist[0] == 0
        assert count[0] == 1

    def test_diamond_counts_two_paths(self, diamond):
        _, count = bfs_counting(diamond, 0)
        assert count[3] == 2

    def test_complete_graph_all_single_paths(self):
        _, count = bfs_counting(complete_graph(5), 0)
        assert count[1:] == [1, 1, 1, 1]

    def test_star_paths_through_hub(self):
        g = star_graph(4)
        _, count = bfs_counting(g, 1)
        assert count[2] == 1  # leaf-hub-leaf

    def test_unreachable_count_zero(self, two_components):
        _, count = bfs_counting(two_components, 0)
        assert count[4] == 0

    def test_counts_grow_combinatorially(self):
        # 3-dimensional hypercube: spc(000, 111) == 3! == 6
        edges = [(a, b) for a in range(8) for b in range(8) if bin(a ^ b).count("1") == 1 and a < b]
        g = Graph(8, edges)
        _, count = bfs_counting(g, 0)
        assert count[7] == 6

    def test_weighted_counting(self):
        # 0-1-2 where internal vertex 1 stands for 3 merged twins
        g = Graph(3, [(0, 1), (1, 2)], vertex_weights=[1, 3, 1])
        _, count = bfs_counting(g, 0)
        assert count[2] == 3
        assert count[1] == 1  # endpoint weight never applies


class TestSpcPair:
    def test_identity_pair(self, triangle):
        assert spc_pair(triangle, 1, 1) == (0, 1)

    def test_matches_full_bfs(self, social_graph):
        rng = np.random.default_rng(3)
        for _ in range(25):
            s, t = (int(x) for x in rng.integers(social_graph.n, size=2))
            dist, count = bfs_counting(social_graph, s)
            assert spc_pair(social_graph, s, t) == (int(dist[t]), count[t])

    def test_unreachable(self, two_components):
        assert spc_pair(two_components, 0, 4) == (UNREACHABLE, 0)

    def test_cycle_even_split(self):
        assert spc_pair(cycle_graph(8), 0, 4) == (4, 2)

    def test_distance_pair_wrapper(self, diamond):
        assert distance_pair(diamond, 0, 3) == 2
        assert distance_pair(diamond, 0, 0) == 0
