"""Unit tests for index-guided shortest-path enumeration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications.paths import enumerate_shortest_paths, shortest_path_dag
from repro.baselines.bfs_spc import OnlineBFSCounter
from repro.core.index import PSPCIndex
from repro.errors import QueryError
from repro.graph.generators import barabasi_albert, cycle_graph, grid_road_network
from repro.graph.graph import Graph


def is_valid_path(graph: Graph, path: list[int]) -> bool:
    return all(graph.has_edge(u, v) for u, v in zip(path, path[1:]))


class TestShortestPathDag:
    def test_diamond_dag(self, diamond):
        index = PSPCIndex.build(diamond)
        dag = shortest_path_dag(diamond, index, 0, 3)
        assert sorted(dag[0]) == [1, 2]
        assert dag[1] == [3]
        assert dag[2] == [3]

    def test_unreachable_is_empty(self, two_components):
        index = PSPCIndex.build(two_components)
        assert shortest_path_dag(two_components, index, 0, 4) == {}


class TestEnumeration:
    def test_diamond_both_paths(self, diamond):
        index = PSPCIndex.build(diamond)
        paths = list(enumerate_shortest_paths(diamond, index, 0, 3))
        assert sorted(paths) == [[0, 1, 3], [0, 2, 3]]

    def test_identity_path(self, diamond):
        index = PSPCIndex.build(diamond)
        assert list(enumerate_shortest_paths(diamond, index, 2, 2)) == [[2]]

    def test_count_matches_spc(self):
        graph = barabasi_albert(80, 3, seed=15)
        index = PSPCIndex.build(graph)
        rng = np.random.default_rng(3)
        for _ in range(20):
            s, t = (int(x) for x in rng.integers(graph.n, size=2))
            expected = index.query(s, t)
            paths = list(enumerate_shortest_paths(graph, index, s, t))
            assert len(paths) == expected.count, (s, t)
            for path in paths:
                assert is_valid_path(graph, path)
                assert len(path) == expected.dist + 1
            assert len({tuple(p) for p in paths}) == len(paths)  # all distinct

    def test_limit_truncates(self):
        graph = grid_road_network(5, 5)
        index = PSPCIndex.build(graph)
        # corner to corner: C(8, 4) = 70 monotone lattice paths
        all_paths = list(enumerate_shortest_paths(graph, index, 0, 24))
        assert len(all_paths) == 70
        limited = list(enumerate_shortest_paths(graph, index, 0, 24, limit=5))
        assert len(limited) == 5
        assert limited == all_paths[:5]

    def test_unreachable_yields_nothing(self, two_components):
        index = PSPCIndex.build(two_components)
        assert list(enumerate_shortest_paths(two_components, index, 0, 4)) == []

    def test_invalid_limit(self, diamond):
        index = PSPCIndex.build(diamond)
        with pytest.raises(QueryError):
            list(enumerate_shortest_paths(diamond, index, 0, 3, limit=0))

    def test_works_with_bfs_oracle(self):
        graph = cycle_graph(8)
        oracle = OnlineBFSCounter(graph)
        paths = list(enumerate_shortest_paths(graph, oracle, 0, 4))
        assert sorted(paths) == [[0, 1, 2, 3, 4], [0, 7, 6, 5, 4]]
