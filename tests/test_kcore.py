"""Unit tests for k-core decomposition and the core-fringe split."""

from __future__ import annotations

import numpy as np

from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.kcore import core_fringe, core_numbers, k_core_vertices
from repro.graph.traversal import spc_pair


class TestCoreNumbers:
    def test_complete_graph(self):
        assert list(core_numbers(complete_graph(5))) == [4] * 5

    def test_cycle_is_2_core(self):
        assert list(core_numbers(cycle_graph(6))) == [2] * 6

    def test_tree_is_1_core(self):
        assert set(int(c) for c in core_numbers(random_tree(30, seed=1))) == {1}

    def test_star_center_and_leaves(self):
        cores = core_numbers(star_graph(6))
        assert int(cores[0]) == 1
        assert all(int(c) == 1 for c in cores[1:])

    def test_matches_peeling_definition(self):
        # every vertex of the k-core must have >= k neighbours inside it
        g = barabasi_albert(100, 3, seed=5)
        cores = core_numbers(g)
        for k in range(1, int(cores.max()) + 1):
            members = set(int(v) for v in k_core_vertices(g, k))
            for v in members:
                inside = sum(1 for w in g.neighbors(v) if int(w) in members)
                assert inside >= k

    def test_k_core_vertices_empty_when_k_too_large(self):
        assert len(k_core_vertices(cycle_graph(5), 3)) == 0


class TestCoreFringe:
    def test_cycle_with_pendant_path(self):
        # cycle 0..4 plus pendant path 4-5-6
        g = Graph(7, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (4, 5), (5, 6)])
        split = core_fringe(g)
        assert split.core_graph.n == 5
        assert split.fringe_size == 2
        assert split.anchor[5] == 4
        assert split.anchor[6] == 4
        assert split.depth[6] == 2
        assert split.parent[6] == 5

    def test_core_vertices_anchor_themselves(self, diamond):
        split = core_fringe(diamond)
        assert split.fringe_size == 0
        assert list(split.anchor) == [0, 1, 2, 3]
        assert list(split.depth) == [0, 0, 0, 0]

    def test_pure_tree_has_empty_core(self):
        split = core_fringe(path_graph(6))
        assert split.core_graph.n == 0
        assert split.fringe_size == 6
        # whole component anchors at a single root
        assert len(set(int(a) for a in split.anchor)) == 1

    def test_tree_depths_consistent_with_distances(self):
        g = random_tree(40, seed=3)
        split = core_fringe(g)
        root = int(split.anchor[0])
        for v in range(g.n):
            assert int(split.anchor[v]) == root
            assert int(split.depth[v]) == spc_pair(g, v, root)[0]

    def test_core_of_old_round_trip(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (3, 5)])
        split = core_fringe(g)
        for core_id, old in enumerate(split.old_of_core):
            assert int(split.core_of_old[old]) == core_id

    def test_isolated_vertex_is_own_anchor(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 0)])
        split = core_fringe(g)
        assert int(split.anchor[3]) == 3
        assert int(split.depth[3]) == 0
