"""Property-based tests (hypothesis) for the core invariants.

These are the strongest checks in the suite: on arbitrary random graphs and
arbitrary total orders, the PSPC index must (1) equal the HP-SPC index,
(2) answer every query exactly like the BFS oracle, and (3) be invariant to
the propagation paradigm and the landmark filter.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hpspc import hpspc_index
from repro.core.pspc import pspc_index
from repro.core.queries import spc_query

# property tests target the raw label builders through their deprecated
# shims (the invariants are about the builders, not the facades)
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")
from repro.graph.graph import Graph
from repro.graph.traversal import spc_pair
from repro.ordering.base import VertexOrder
from repro.ordering.degree import degree_order
from repro.reduction.pipeline import ReducedSPCIndex


@st.composite
def random_graphs(draw, max_n: int = 14) -> Graph:
    """Arbitrary undirected graphs with up to ``max_n`` vertices."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=3 * n, unique=True)) if possible else []
    return Graph(n, edges)


@st.composite
def graphs_with_orders(draw, max_n: int = 12) -> tuple[Graph, VertexOrder]:
    graph = draw(random_graphs(max_n))
    perm = draw(st.permutations(range(graph.n)))
    return graph, VertexOrder.from_order(np.array(perm, dtype=np.int64), graph.n)


@settings(max_examples=60, deadline=None)
@given(graphs_with_orders())
def test_pspc_equals_hpspc_for_any_order(data):
    graph, order = data
    assert pspc_index(graph, order) == hpspc_index(graph, order)


@settings(max_examples=60, deadline=None)
@given(graphs_with_orders())
def test_index_answers_match_bfs_for_all_pairs(data):
    graph, order = data
    index = pspc_index(graph, order)
    for s in range(graph.n):
        for t in range(graph.n):
            result = spc_query(index, s, t)
            assert (result.dist, result.count) == spc_pair(graph, s, t)


@settings(max_examples=40, deadline=None)
@given(graphs_with_orders())
def test_push_and_pull_build_identical_indexes(data):
    graph, order = data
    assert pspc_index(graph, order, paradigm="push") == pspc_index(graph, order, paradigm="pull")


@settings(max_examples=40, deadline=None)
@given(graphs_with_orders(), st.integers(min_value=1, max_value=6))
def test_landmarks_never_change_the_index(data, k):
    graph, order = data
    assert pspc_index(graph, order, num_landmarks=k) == pspc_index(graph, order)


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_reduction_pipeline_is_exact(graph):
    reduced = ReducedSPCIndex.build(graph, ordering="degree")
    for s in range(graph.n):
        for t in range(graph.n):
            got = reduced.query(s, t)
            assert (got.dist, got.count) == spc_pair(graph, s, t)


@settings(max_examples=40, deadline=None)
@given(
    random_graphs(max_n=10),
    st.lists(st.integers(min_value=1, max_value=4), min_size=10, max_size=10),
)
def test_weighted_counting_matches_blowup(graph, weights):
    """Vertex-weighted counting == plain counting on the expanded graph.

    Each vertex v with weight w is replaced by w copies wired identically;
    a query between copy-0 endpoints must agree with the weighted count.
    """
    weights = weights[: graph.n]
    weighted = Graph(graph.n, list(graph.edges()), vertex_weights=weights)

    # build the blow-up graph: vertex (v, i) for i < w(v)
    offsets = np.concatenate([[0], np.cumsum(weights)]).astype(int)
    blow_edges = []
    for u, v in graph.edges():
        for i in range(weights[u]):
            for j in range(weights[v]):
                blow_edges.append((offsets[u] + i, offsets[v] + j))
    blown = Graph(int(offsets[-1]), blow_edges)

    index = pspc_index(weighted, degree_order(weighted))
    for s in range(graph.n):
        for t in range(graph.n):
            if s == t:
                continue
            expected = spc_pair(blown, int(offsets[s]), int(offsets[t]))
            got = spc_query(index, s, t)
            assert (got.dist, got.count) == expected


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_bidirectional_bfs_matches_unidirectional(graph):
    from repro.baselines.bidirectional import bidirectional_spc

    for s in range(graph.n):
        for t in range(graph.n):
            assert bidirectional_spc(graph, s, t) == spc_pair(graph, s, t)


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_compact_index_matches_tuple_index(graph):
    from repro.core.compact import CompactLabelIndex

    index = pspc_index(graph, degree_order(graph))
    compact = CompactLabelIndex.from_index(index)
    for s in range(graph.n):
        for t in range(graph.n):
            got = compact.query(s, t)
            ref = spc_query(index, s, t)
            assert (got.dist, got.count) == (ref.dist, ref.count)


@st.composite
def random_digraphs(draw, max_n: int = 10):
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(st.lists(st.sampled_from(possible), max_size=3 * n, unique=True)) if possible else []
    from repro.digraph import DiGraph

    return DiGraph(n, edges)


@settings(max_examples=40, deadline=None)
@given(random_digraphs())
def test_directed_pspc_equals_hpspc_and_bfs(graph):
    from repro.digraph import (
        build_hpspc_directed,
        build_pspc_directed,
        degree_order_directed,
        spc_pair_directed,
        spc_query_directed,
    )

    order = degree_order_directed(graph)
    hp, _ = build_hpspc_directed(graph, order)
    ps, _ = build_pspc_directed(graph, order)
    assert hp == ps
    for s in range(graph.n):
        for t in range(graph.n):
            got = spc_query_directed(ps, s, t)
            assert (got.dist, got.count) == spc_pair_directed(graph, s, t)


@settings(max_examples=30, deadline=None)
@given(graphs_with_orders(max_n=10))
def test_full_audit_accepts_every_built_index(data):
    from repro.core.verify import audit_full

    graph, order = data
    index = pspc_index(graph, order)
    audit_full(index, graph, query_samples=None)
