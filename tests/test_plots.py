"""Unit tests for the ASCII chart renderers."""

from __future__ import annotations

from repro.experiments.plots import bar_chart, line_chart


class TestLineChart:
    def test_renders_all_series_markers(self):
        chart = line_chart(
            {"FB": [(1, 1.0), (20, 18.0)], "GO": [(1, 1.0), (20, 19.0)]},
            title="speedup",
        )
        assert "speedup" in chart
        assert "F=FB" in chart and "G=GO" in chart
        assert "F" in chart.replace("F=FB", "")

    def test_empty_series(self):
        assert "(no data)" in line_chart({}, title="x")

    def test_constant_series_does_not_crash(self):
        chart = line_chart({"a": [(1, 5.0), (2, 5.0)]})
        assert "5.0" in chart

    def test_axis_labels_span_data(self):
        chart = line_chart({"a": [(1, 2.0), (10, 7.0)]})
        assert "7.0" in chart
        assert "2.0" in chart


class TestBarChart:
    ROWS = [
        {"dataset": "FB", "hpspc_s": 0.8, "pspc_s": 0.9},
        {"dataset": "IN", "hpspc_s": 18.0, "pspc_s": 11.0},
    ]

    def test_renders_bars_and_values(self):
        chart = bar_chart(self.ROWS, "dataset", ["hpspc_s", "pspc_s"], title="fig5")
        assert "fig5" in chart
        assert "FB" in chart and "IN" in chart
        assert "#" in chart
        assert "18" in chart

    def test_log_scale_monotone_bars(self):
        chart = bar_chart(self.ROWS, "dataset", ["hpspc_s"])
        lines = [l for l in chart.splitlines() if "|" in l]
        fb_len = lines[0].count("#")
        in_len = lines[1].count("#")
        assert in_len > fb_len

    def test_linear_scale(self):
        chart = bar_chart(self.ROWS, "dataset", ["hpspc_s"], log=False)
        assert "linear scale" in chart

    def test_empty_rows(self):
        assert "(no data)" in bar_chart([], "x", ["y"], title="t")

    def test_zero_values_handled(self):
        rows = [{"d": "a", "v": 0.0}, {"d": "b", "v": 3.0}]
        chart = bar_chart(rows, "d", ["v"])
        assert "0" in chart
