"""Unit tests for execution backends and the speedup simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parallel import (
    SerialBackend,
    ThreadBackend,
    build_speedup_curve,
    query_speedup_curve,
    simulated_build_units,
    simulated_query_units,
)
from repro.core.pspc import build_pspc
from repro.core.queries import query_costs
from repro.errors import SchedulingError
from repro.experiments.datasets import random_query_pairs
from repro.ordering.degree import degree_order


@pytest.fixture
def built(social_graph):
    order = degree_order(social_graph)
    index, stats = build_pspc(social_graph, order)
    return social_graph, order, index, stats


class TestBackends:
    def test_serial_preserves_order(self):
        backend = SerialBackend()
        assert backend.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
        backend.close()

    def test_thread_backend_matches_serial(self):
        backend = ThreadBackend(3)
        try:
            assert backend.map(lambda x: x * x, list(range(50))) == [x * x for x in range(50)]
        finally:
            backend.close()

    def test_thread_backend_validates_count(self):
        with pytest.raises(SchedulingError):
            ThreadBackend(0)


class TestBuildSimulation:
    def test_speedup_monotone_without_overhead(self, built):
        """With zero barrier cost, more threads can never hurt."""
        _, order, _, stats = built
        curve = build_speedup_curve(
            stats, order, threads=(1, 2, 4, 8, 16, 20), sync_units_per_thread=0.0
        )
        values = list(curve.values())
        assert curve[1] == pytest.approx(1.0)
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_speedup_bounded_by_threads(self, built):
        _, order, _, stats = built
        curve = build_speedup_curve(stats, order, threads=(2, 4, 8))
        for t, speedup in curve.items():
            assert speedup <= t + 1e-9

    def test_meaningful_parallelism(self, built):
        _, order, _, stats = built
        curve = build_speedup_curve(stats, order, threads=(20,), sync_units_per_thread=1.0)
        assert curve[20] > 4.0  # the whole point of the paper

    def test_default_overhead_bends_curve_below_linear(self, built):
        """The default barrier cost makes 20 threads sublinear, as in Fig. 8."""
        _, order, _, stats = built
        realistic = build_speedup_curve(stats, order, threads=(20,))
        ideal = build_speedup_curve(stats, order, threads=(20,), sync_units_per_thread=0.0)
        assert realistic[20] < ideal[20]

    def test_dynamic_at_least_static(self, built):
        _, order, _, stats = built
        for t in (4, 16):
            dyn = simulated_build_units(stats, order, t, "dynamic")
            sta = simulated_build_units(stats, order, t, "static")
            assert dyn <= sta + 1e-9

    def test_sync_cost_penalises_threads(self, built):
        _, order, _, stats = built
        cheap = simulated_build_units(stats, order, 20, sync_units_per_thread=0.0)
        costly = simulated_build_units(stats, order, 20, sync_units_per_thread=1e6)
        assert costly > cheap

    def test_requires_recorded_work(self, social_graph):
        order = degree_order(social_graph)
        _, stats = build_pspc(social_graph, order, record_work=False)
        with pytest.raises(SchedulingError):
            simulated_build_units(stats, order, 4)


class TestQuerySimulation:
    def test_query_speedup_monotone(self, built):
        graph, _, index, _ = built
        pairs = random_query_pairs(graph, 300, seed=2)
        costs = query_costs(index, pairs)
        curve = query_speedup_curve(
            costs, threads=(1, 2, 4, 8, 16, 20), sync_units_per_thread=0.0
        )
        values = list(curve.values())
        assert curve[1] == pytest.approx(1.0)
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_query_units_shrink_with_threads(self, built):
        graph, _, index, _ = built
        costs = query_costs(index, random_query_pairs(graph, 200, seed=3))
        assert simulated_query_units(costs, 8) < simulated_query_units(costs, 1)

    def test_near_linear_on_uniform_batch(self):
        costs = [10] * 1000
        curve = query_speedup_curve(costs, threads=(10,), sync_units_per_thread=0.0)
        assert curve[10] == pytest.approx(10.0, rel=0.01)
