"""Unit tests for the propagation primitives (candidate gather/prune)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.landmarks import build_landmark_index
from repro.core.propagation import (
    IterationContext,
    merge_bucket,
    prune_candidates,
    pull_candidates,
    push_scatter,
)
from repro.graph.graph import Graph
from repro.ordering.degree import degree_order


@pytest.fixture
def ctx_d1(diamond):
    """Iteration d=1 context over the diamond with fresh self-labels."""
    order = degree_order(diamond)
    rank = order.rank
    n = diamond.n
    return IterationContext(
        graph=diamond,
        d=1,
        rank=rank,
        order_arr=order.order,
        labels=[[(int(rank[u]), 0, 1)] for u in range(n)],
        label_maps=[{int(rank[u]): 0} for u in range(n)],
        current=[[(int(rank[u]), 1)] for u in range(n)],
        landmarks=None,
    )


class TestPullCandidates:
    def test_gathers_only_outranking_hubs(self, ctx_d1, diamond):
        order = degree_order(diamond)
        for u in range(diamond.n):
            candidates, work, pruned = pull_candidates(ctx_d1, u)
            for hub_rank in candidates:
                assert hub_rank < int(order.rank[u])
            assert work == diamond.degree(u)  # one unit per neighbour entry
            assert len(candidates) + pruned == diamond.degree(u)

    def test_counts_initially_one_per_edge(self, ctx_d1):
        candidates, _, _ = pull_candidates(ctx_d1, 3)
        assert all(c == 1 for c in candidates.values())

    def test_merging_sums_counts(self, diamond):
        # at d=2, vertex 3 receives hub(0) from both 1 and 2 -> merged count 2
        order = degree_order(diamond)
        rank = order.rank
        rank0 = int(rank[0])
        current = [[] for _ in range(4)]
        current[1] = [(rank0, 1)]
        current[2] = [(rank0, 1)]
        ctx = IterationContext(
            graph=diamond,
            d=2,
            rank=rank,
            order_arr=order.order,
            labels=[[(int(rank[u]), 0, 1)] for u in range(4)],
            label_maps=[{int(rank[u]): 0} for u in range(4)],
            current=current,
            landmarks=None,
        )
        candidates, _, _ = pull_candidates(ctx, 3)
        assert candidates.get(rank0) == 2

    def test_weight_factor_applied_to_internal_vertex(self):
        g = Graph(3, [(0, 1), (1, 2)], vertex_weights=[1, 7, 1])
        order = degree_order(g)
        rank = order.rank
        rank0 = int(rank[0])
        current = [[] for _ in range(3)]
        current[1] = [(rank0, 1)]  # label (hub 0, d=1) fresh on vertex 1
        ctx = IterationContext(
            graph=g, d=2, rank=rank, order_arr=order.order,
            labels=[[(int(rank[u]), 0, 1)] for u in range(3)],
            label_maps=[{int(rank[u]): 0} for u in range(3)],
            current=current, landmarks=None,
        )
        candidates, _, _ = pull_candidates(ctx, 2)
        assert candidates.get(rank0) == 7  # vertex 1 became internal


class TestPushScatter:
    def test_push_matches_pull_multiset(self, ctx_d1, diamond):
        buckets: list[list[tuple[int, int]]] = [[] for _ in range(diamond.n)]
        for u in range(diamond.n):
            push_scatter(ctx_d1, buckets, u)
        for u in range(diamond.n):
            pulled, _, _ = pull_candidates(ctx_d1, u)
            merged, _, _ = merge_bucket(ctx_d1, u, buckets[u])
            assert merged == pulled

    def test_empty_current_is_free(self, ctx_d1, diamond):
        ctx_d1.current[0] = []
        buckets: list[list[tuple[int, int]]] = [[] for _ in range(diamond.n)]
        assert push_scatter(ctx_d1, buckets, 0) == 0


class TestPruneCandidates:
    def test_accepts_fresh_distance_one(self, ctx_d1):
        candidates, _, _ = pull_candidates(ctx_d1, 3)
        accepted, _, pruned, _ = prune_candidates(ctx_d1, 3, candidates)
        assert pruned == 0
        assert [hub for hub, _ in accepted] == sorted(hub for hub, _ in accepted)

    def test_prunes_known_shorter_distance(self, ctx_d1, diamond):
        # pretend vertex 3 already has hub 0's label at distance 1
        order = degree_order(diamond)
        rank0 = int(order.rank[0])
        ctx_d1.label_maps[3][rank0] = 1
        ctx_d1.labels[3].append((rank0, 1, 1))
        ctx = ctx_d1
        ctx.d = 2
        accepted, _, pruned, _ = prune_candidates(ctx, 3, {rank0: 1})
        assert accepted == []
        assert pruned == 1

    def test_landmark_filter_answers_without_scanning(self, diamond):
        order = degree_order(diamond)
        landmarks = build_landmark_index(diamond, order, 2)
        rank = order.rank
        ctx = IterationContext(
            graph=diamond, d=2, rank=rank, order_arr=order.order,
            labels=[[(int(rank[u]), 0, 1)] for u in range(4)],
            label_maps=[{int(rank[u]): 0} for u in range(4)],
            current=[[] for _ in range(4)],
            landmarks=landmarks,
        )
        top_rank = 0  # the highest-ranked vertex is a landmark by degree
        u = int(order.order[3])
        _, _, _, hits = prune_candidates(ctx, u, {top_rank: 1})
        assert hits == 1
