"""Unit tests for the CSR Graph substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, VertexError
from repro.graph.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.n == 0
        assert g.m == 0
        assert g.average_degree() == 0.0

    def test_isolated_vertices(self):
        g = Graph(4, [])
        assert g.n == 4
        assert g.m == 0
        assert g.degree(2) == 0

    def test_basic_edges(self, triangle):
        assert triangle.n == 3
        assert triangle.m == 3
        assert all(triangle.degree(v) == 2 for v in range(3))

    def test_duplicate_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_self_loops_dropped(self):
        g = Graph(3, [(0, 0), (1, 1), (0, 1)])
        assert g.m == 1

    def test_vertex_out_of_range(self):
        with pytest.raises(VertexError):
            Graph(2, [(0, 5)])

    def test_negative_vertex(self):
        with pytest.raises(VertexError):
            Graph(2, [(-1, 0)])

    def test_negative_vertex_count(self):
        with pytest.raises(GraphError):
            Graph(-1, [])

    def test_neighbors_sorted(self):
        g = Graph(5, [(2, 4), (2, 0), (2, 3), (2, 1)])
        assert list(g.neighbors(2)) == [0, 1, 3, 4]

    def test_csr_arrays_consistent(self, diamond):
        assert len(diamond.indptr) == diamond.n + 1
        assert len(diamond.indices) == 2 * diamond.m
        assert int(diamond.indptr[-1]) == 2 * diamond.m


class TestAccessors:
    def test_degrees_matches_degree(self, diamond):
        degrees = diamond.degrees()
        assert [int(d) for d in degrees] == [diamond.degree(v) for v in range(4)]

    def test_has_edge(self, diamond):
        assert diamond.has_edge(0, 1)
        assert diamond.has_edge(1, 0)
        assert not diamond.has_edge(0, 3)

    def test_has_edge_out_of_range(self, diamond):
        with pytest.raises(VertexError):
            diamond.has_edge(0, 99)

    def test_edges_iterates_once_each(self, triangle):
        edges = list(triangle.edges())
        assert edges == [(0, 1), (0, 2), (1, 2)]

    def test_average_degree(self, triangle):
        assert triangle.average_degree() == pytest.approx(2.0)

    def test_len(self, diamond):
        assert len(diamond) == 4

    def test_repr_mentions_counts(self, diamond):
        assert "n=4" in repr(diamond)
        assert "m=4" in repr(diamond)


class TestWeights:
    def test_default_weights_are_one(self, triangle):
        assert np.array_equal(triangle.vertex_weights, np.ones(3, dtype=np.int64))
        assert not triangle.is_weighted

    def test_explicit_weights(self):
        g = Graph(3, [(0, 1)], vertex_weights=[2, 1, 3])
        assert g.is_weighted
        assert list(g.vertex_weights) == [2, 1, 3]

    def test_weights_wrong_length(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1)], vertex_weights=[1, 2])

    def test_weights_must_be_positive(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1)], vertex_weights=[1, 0])


class TestDerivedGraphs:
    def test_subgraph_keeps_induced_edges(self, diamond):
        sub, old_of_new = diamond.subgraph([0, 1, 3])
        assert sub.n == 3
        assert sub.m == 2  # edges 0-1 and 1-3 survive
        assert list(old_of_new) == [0, 1, 3]

    def test_subgraph_duplicate_vertices_rejected(self, diamond):
        with pytest.raises(GraphError):
            diamond.subgraph([0, 0, 1])

    def test_subgraph_carries_weights(self):
        g = Graph(3, [(0, 1), (1, 2)], vertex_weights=[5, 6, 7])
        sub, _ = g.subgraph([2, 0])
        assert list(sub.vertex_weights) == [7, 5]

    def test_relabeled_preserves_structure(self, diamond):
        perm = [3, 2, 1, 0]
        relabeled = diamond.relabeled(perm)
        assert relabeled.m == diamond.m
        for u, v in diamond.edges():
            assert relabeled.has_edge(perm[u], perm[v])

    def test_relabeled_requires_permutation(self, diamond):
        with pytest.raises(GraphError):
            diamond.relabeled([0, 0, 1, 2])

    def test_equality(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        c = Graph(3, [(0, 1)])
        assert a == b
        assert a != c
        assert a != "not a graph"
