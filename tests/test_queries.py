"""Unit tests for SPC query evaluation (Equations 1-2 of the paper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pspc import build_pspc
from repro.core.queries import batch_query, query_costs, spc_query, spc_query_with_cost
from repro.errors import QueryError
from repro.graph.graph import Graph
from repro.graph.traversal import UNREACHABLE, spc_pair
from repro.ordering.degree import degree_order


@pytest.fixture
def indexed(diamond):
    index, _ = build_pspc(diamond, degree_order(diamond))
    return diamond, index


class TestSpcQuery:
    def test_identity(self, indexed):
        _, index = indexed
        result = spc_query(index, 2, 2)
        assert (result.dist, result.count) == (0, 1)
        assert result.reachable

    def test_adjacent(self, indexed):
        _, index = indexed
        assert (spc_query(index, 0, 1).dist, spc_query(index, 0, 1).count) == (1, 1)

    def test_two_paths(self, indexed):
        _, index = indexed
        result = spc_query(index, 0, 3)
        assert (result.dist, result.count) == (2, 2)

    def test_symmetry(self, indexed):
        graph, index = indexed
        for s in range(graph.n):
            for t in range(graph.n):
                a = spc_query(index, s, t)
                b = spc_query(index, t, s)
                assert (a.dist, a.count) == (b.dist, b.count)

    def test_unreachable(self, two_components):
        index, _ = build_pspc(two_components, degree_order(two_components))
        result = spc_query(index, 0, 4)
        assert result.dist == UNREACHABLE
        assert result.count == 0
        assert not result.reachable

    def test_out_of_range_rejected(self, indexed):
        _, index = indexed
        with pytest.raises(QueryError):
            spc_query(index, 0, 99)
        with pytest.raises(QueryError):
            spc_query(index, -1, 0)

    def test_matches_bfs_on_random_graph(self, social_graph):
        index, _ = build_pspc(social_graph, degree_order(social_graph))
        rng = np.random.default_rng(17)
        for _ in range(100):
            s, t = (int(x) for x in rng.integers(social_graph.n, size=2))
            result = spc_query(index, s, t)
            assert (result.dist, result.count) == spc_pair(social_graph, s, t)


class TestQueryCosts:
    def test_cost_positive(self, indexed):
        _, index = indexed
        _, cost = spc_query_with_cost(index, 0, 3)
        assert cost >= 1

    def test_cost_bounded_by_label_sizes(self, indexed):
        _, index = indexed
        _, cost = spc_query_with_cost(index, 0, 3)
        assert cost <= index.label_size(0) + index.label_size(3)

    def test_batch_helpers(self, indexed):
        _, index = indexed
        pairs = [(0, 3), (1, 2), (0, 0)]
        results = batch_query(index, pairs)
        costs = query_costs(index, pairs)
        assert len(results) == len(costs) == 3
        assert results[2].count == 1


class TestWeightedQueries:
    def test_hub_weight_scales_count(self):
        # path 0-1-2 with vertex 1 representing 4 merged twins
        g = Graph(3, [(0, 1), (1, 2)], vertex_weights=[1, 4, 1])
        index, _ = build_pspc(g, degree_order(g))
        result = spc_query(index, 0, 2)
        assert (result.dist, result.count) == (2, 4)

    def test_endpoint_weight_never_applies(self):
        g = Graph(2, [(0, 1)], vertex_weights=[9, 9])
        index, _ = build_pspc(g, degree_order(g))
        assert spc_query(index, 0, 1).count == 1


class TestParallelBatch:
    def test_threaded_batch_matches_serial(self, social_graph):
        from repro.core.pspc import build_pspc
        from repro.ordering.degree import degree_order
        import numpy as np

        index, _ = build_pspc(social_graph, degree_order(social_graph))
        rng = np.random.default_rng(6)
        pairs = [(int(s), int(t)) for s, t in rng.integers(social_graph.n, size=(80, 2))]
        assert batch_query(index, pairs, threads=4) == batch_query(index, pairs)
