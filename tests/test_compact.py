"""Unit tests for the numpy-packed CompactLabelIndex."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compact import CompactLabelIndex
from repro.core.index import PSPCIndex
from repro.errors import IndexStateError, QueryError
from repro.graph.generators import barabasi_albert
from repro.graph.graph import Graph


@pytest.fixture
def frozen(social_graph):
    index = PSPCIndex.build(social_graph)
    return social_graph, index, CompactLabelIndex.from_index(index.labels)


class TestFreezeThaw:
    def test_round_trip(self, frozen):
        _, index, compact = frozen
        assert compact.to_label_index() == index.labels

    def test_entry_count_preserved(self, frozen):
        _, index, compact = frozen
        assert compact.total_entries() == index.total_entries()
        assert compact.n == index.n

    def test_packed_is_smaller_than_nominal_tuples(self, frozen):
        _, index, compact = frozen
        # each tuple entry costs >= 3 pointers (~24B) beyond the 14B packed
        assert compact.nbytes() < index.total_entries() * 24

    def test_overflow_rejected(self):
        g = Graph(2, [(0, 1)])
        index = PSPCIndex.build(g)
        index.labels.entries[1][0] = (0, 1, 2**64)
        with pytest.raises(IndexStateError, match="int64"):
            CompactLabelIndex.from_index(index.labels)


class TestQueries:
    def test_matches_tuple_index(self, frozen):
        graph, index, compact = frozen
        rng = np.random.default_rng(11)
        for _ in range(200):
            s, t = (int(x) for x in rng.integers(graph.n, size=2))
            assert compact.query(s, t) == index.query(s, t)

    def test_identity_and_unreachable(self, two_components):
        index = PSPCIndex.build(two_components)
        compact = CompactLabelIndex.from_index(index.labels)
        assert compact.query(1, 1).count == 1
        assert compact.query(0, 4).count == 0
        assert compact.spc(0, 1) == 1
        assert compact.distance(0, 2) == 2

    def test_weighted_graph(self):
        g = Graph(3, [(0, 1), (1, 2)], vertex_weights=[1, 5, 1])
        compact = CompactLabelIndex.from_index(PSPCIndex.build(g).labels)
        assert compact.query(0, 2).count == 5

    def test_out_of_range(self, frozen):
        _, _, compact = frozen
        with pytest.raises(QueryError):
            compact.query(0, 10_000)


class TestPersistence:
    def test_npz_round_trip(self, frozen, tmp_path):
        _, _, compact = frozen
        path = tmp_path / "compact.npz"
        compact.save(path)
        assert CompactLabelIndex.load(path) == compact

    def test_loaded_queries_match(self, tmp_path):
        graph = barabasi_albert(70, 2, seed=23)
        index = PSPCIndex.build(graph)
        compact = CompactLabelIndex.from_index(index.labels)
        path = tmp_path / "c.npz"
        compact.save(path)
        loaded = CompactLabelIndex.load(path)
        for s in range(0, 70, 7):
            for t in range(0, 70, 9):
                assert loaded.query(s, t) == index.query(s, t)

    def test_repr(self, frozen):
        _, _, compact = frozen
        assert "CompactLabelIndex" in repr(compact)
