"""Conformance suite for the unified SPCounter API (repro.api).

Every registered method must survive the same cycle:
build -> query/spc/distance/query_batch -> save -> open_index -> re-query,
with answers matching the BFS oracle of its substrate.  On top of that,
the method registry and the admission-batched QueryService get their own
semantic checks (kernel-invocation counts, flush triggers, exactness).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.api import (
    BuildConfig,
    QueryService,
    SPCounter,
    build_index,
    get_method,
    method_names,
    open_index,
    register_method,
)
from repro.api import _METHODS  # test-only: registry restore
from repro.core.stats import BuildStats
from repro.digraph.digraph import DiGraph
from repro.digraph.traversal import spc_pair_directed
from repro.errors import IndexBuildError, PersistenceError, QueryError
from repro.graph.generators import barabasi_albert
from repro.graph.traversal import spc_pair

BUILTINS = ("pspc", "hpspc", "reduced", "directed", "dynamic", "bfs", "bidirectional")


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert(60, 2, seed=21)


@pytest.fixture(scope="module")
def digraph():
    rng = np.random.default_rng(11)
    arcs = [(int(u), int(v)) for u, v in rng.integers(40, size=(150, 2))]
    return DiGraph(40, arcs)


@pytest.fixture(scope="module")
def counters(graph, digraph):
    """One built counter per registered method (shared across tests)."""
    built = {}
    for name in method_names():
        substrate = digraph if get_method(name).directed else graph
        built[name] = build_index(
            substrate, method=name, config=BuildConfig(num_landmarks=4)
        )
    return built


def _oracle_for(name, graph, digraph):
    if get_method(name).directed:
        return digraph, spc_pair_directed
    return graph, spc_pair


def _sample_pairs(n, count=30, seed=3):
    rng = np.random.default_rng(seed)
    return [(int(s), int(t)) for s, t in rng.integers(n, size=(count, 2))]


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTINS) <= set(method_names())

    def test_unknown_method_lists_names(self, graph):
        with pytest.raises(IndexBuildError, match="registered methods"):
            build_index(graph, method="nope")

    def test_unknown_config_knob_rejected(self, graph):
        with pytest.raises(IndexBuildError, match="BuildConfig knobs"):
            build_index(graph, method="pspc", frobnicate=3)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(IndexBuildError, match="already registered"):
            register_method("pspc", lambda g, c: None)

    def test_custom_method_builds_and_overwrites(self, graph):
        try:
            register_method(
                "custom-bfs",
                lambda g, config: build_index(g, method="bfs"),
                description="test double",
            )
            counter = build_index(graph, method="custom-bfs")
            assert counter.spc(0, 30) == spc_pair(graph, 0, 30)[1]
            # overwrite=True replaces; plain re-register raises
            register_method(
                "custom-bfs",
                lambda g, config: build_index(g, method="bidirectional"),
                overwrite=True,
            )
            assert type(build_index(graph, method="custom-bfs")).__name__ == (
                "BidirectionalBFSCounter"
            )
        finally:
            _METHODS.pop("custom-bfs", None)

    def test_substrate_mismatch_rejected(self, graph, digraph):
        with pytest.raises(IndexBuildError, match="DiGraph"):
            build_index(graph, method="directed")
        with pytest.raises(IndexBuildError, match="undirected"):
            build_index(digraph, method="pspc")

    def test_method_from_config_field(self, graph):
        counter = build_index(graph, config=BuildConfig(method="hpspc"))
        assert type(counter).__name__ == "HPSPCIndex"


class TestConformance:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_protocol_and_exactness(self, name, counters, graph, digraph):
        counter = counters[name]
        substrate, oracle = _oracle_for(name, graph, digraph)
        assert isinstance(counter, SPCounter)
        assert counter.n == substrate.n
        assert isinstance(counter.stats, BuildStats)
        assert isinstance(counter.size_bytes(), int) and counter.size_bytes() >= 0
        pairs = _sample_pairs(substrate.n)
        for s, t in pairs[:10]:
            expected = oracle(substrate, s, t)
            result = counter.query(s, t)
            assert (result.dist, result.count) == expected
            assert counter.spc(s, t) == expected[1]
            assert counter.distance(s, t) == expected[0]

    @pytest.mark.parametrize("name", BUILTINS)
    def test_query_batch_matches_point_queries(self, name, counters, graph, digraph):
        counter = counters[name]
        substrate, _ = _oracle_for(name, graph, digraph)
        pairs = _sample_pairs(substrate.n)
        assert counter.query_batch(pairs) == [counter.query(s, t) for s, t in pairs]

    @pytest.mark.parametrize("name", BUILTINS)
    def test_save_open_requery(self, name, counters, graph, digraph, tmp_path):
        counter = counters[name]
        substrate, _ = _oracle_for(name, graph, digraph)
        path = tmp_path / f"{name}.npz"
        counter.save(path)
        reopened = open_index(path)
        assert type(reopened) is type(counter)
        assert reopened.n == counter.n
        pairs = _sample_pairs(substrate.n)
        assert reopened.query_batch(pairs) == counter.query_batch(pairs)

    def test_reduction_knobs_respected(self, graph):
        counter = build_index(
            graph, method="reduced", use_one_shell=False, use_equivalence=False
        )
        assert counter.removed_by_one_shell == 0
        assert counter.removed_by_equivalence == 0

    def test_dynamic_stays_exact_through_updates(self, graph):
        counter = build_index(graph, method="dynamic", rebuild_threshold=3)
        counter.add_edge(0, 59)
        assert counter.dirty
        assert counter.query(0, 59).dist == 1
        batch = counter.query_batch([(0, 59), (5, 40)])
        assert [r.dist for r in batch] == [counter.distance(0, 59), counter.distance(5, 40)]


class TestDirectedDefaults:
    """Directed parity conformance: frozen compact store + engine threading."""

    def test_directed_default_is_frozen_compact(self, counters):
        from repro.digraph.labels import CompactDirectedLabelIndex

        counter = counters["directed"]
        assert isinstance(counter.labels, CompactDirectedLabelIndex)
        assert counter.config.store == "compact"
        assert counter.config.engine == "vectorized"

    def test_engine_threads_through_build_index(self, digraph):
        ref = build_index(digraph, method="directed", engine="reference")
        vec = build_index(digraph, method="directed")
        par = build_index(digraph, method="directed", engine="parallel", workers=2)
        assert ref.stats.engine == "reference"
        assert vec.stats.engine == "vectorized"
        assert par.stats.engine == "parallel"
        assert ref.labels == vec.labels == par.labels

    def test_store_opt_out_through_build_index(self, digraph):
        tup = build_index(digraph, method="directed", store="tuple")
        assert tup.labels.kind == "directed"
        vec = build_index(digraph, method="directed")
        assert tup.labels == vec.labels.to_directed_index()

    def test_save_open_keeps_engine_and_kind(self, counters, tmp_path):
        counter = counters["directed"]
        path = tmp_path / "directed-compact.npz"
        counter.save(path)
        reopened = open_index(path)
        assert reopened.labels.kind == "directed-compact"
        assert reopened.config.engine == counter.config.engine
        assert reopened.config.store == "compact"


class TestOpenIndex:
    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not an npz at all")
        with pytest.raises(PersistenceError):
            open_index(path)

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, data=np.arange(3))
        with pytest.raises(PersistenceError, match="repro"):
            open_index(path)

    def test_opens_bare_label_store(self, counters, graph, tmp_path):
        # a compact store saved directly (no index wrapper) comes back
        # wrapped in a queryable PSPCIndex facade
        index = counters["pspc"]
        path = tmp_path / "store.npz"
        index.store.save(path)
        reopened = open_index(path)
        assert type(reopened).__name__ == "PSPCIndex"
        pairs = _sample_pairs(graph.n)
        assert reopened.query_batch(pairs) == index.query_batch(pairs)


class _KernelSpy:
    """Counts batch-kernel invocations of the wrapped counter."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    @property
    def n(self):
        return self.inner.n

    def query(self, s, t):
        return self.inner.query(s, t)

    def query_batch(self, pairs):
        self.calls += 1
        return self.inner.query_batch(pairs)


class TestQueryService:
    def test_bulk_kernel_invocations_and_exactness(self, counters, graph):
        index = counters["pspc"]
        spy = _KernelSpy(index)
        service = QueryService(spy, batch_size=8, max_wait=10.0)
        pairs = _sample_pairs(graph.n, count=37)
        results = service.query_batch(pairs)
        assert spy.calls == math.ceil(37 / 8)
        assert service.stats()["batches"] == spy.calls
        assert results == [index.query(s, t) for s, t in pairs]

    @pytest.mark.parametrize("name", ("pspc", "bfs", "directed"))
    def test_service_matches_every_counter_kind(self, name, counters, graph, digraph):
        counter = counters[name]
        substrate, _ = _oracle_for(name, graph, digraph)
        pairs = _sample_pairs(substrate.n, count=25)
        with QueryService(counter, batch_size=10) as service:
            assert service.query_batch(pairs) == [counter.query(s, t) for s, t in pairs]

    def test_submit_flushes_at_batch_size(self, counters, graph):
        spy = _KernelSpy(counters["pspc"])
        service = QueryService(spy, batch_size=4, max_wait=30.0)
        pairs = _sample_pairs(graph.n, count=4)
        handles = [service.submit(s, t) for s, t in pairs]
        # the fourth submit fills the batch: one kernel call, all resolved
        assert spy.calls == 1
        assert all(h.done for h in handles)
        assert [h.result() for h in handles] == [spy.query(s, t) for s, t in pairs]
        assert service.stats()["full_flushes"] == 1

    def test_result_triggers_timeout_flush(self, counters):
        service = QueryService(counters["pspc"], batch_size=1000, max_wait=0.01)
        handle = service.submit(0, 30)
        assert not handle.done
        result = handle.result()  # waits out max_wait, then flushes itself
        assert result == counters["pspc"].query(0, 30)
        assert service.stats()["timeout_flushes"] == 1

    def test_manual_flush_and_pending(self, counters):
        service = QueryService(counters["pspc"], batch_size=1000, max_wait=30.0)
        service.submit(0, 1)
        service.submit(2, 3)
        assert service.pending == 2
        assert service.flush() == 2
        assert service.pending == 0
        assert service.stats()["manual_flushes"] == 1

    def test_close_flushes_and_refuses(self, counters):
        service = QueryService(counters["pspc"], batch_size=1000, max_wait=30.0)
        handle = service.submit(0, 1)
        service.close()
        assert handle.done
        with pytest.raises(QueryError, match="closed"):
            service.submit(1, 2)

    def test_rejects_bad_parameters(self, counters):
        with pytest.raises(QueryError):
            QueryService(counters["pspc"], batch_size=0)
        with pytest.raises(QueryError):
            QueryService(counters["pspc"], max_wait=-1.0)

    def test_empty_workload(self, counters):
        service = QueryService(counters["pspc"], batch_size=8)
        assert service.query_batch([]) == []
        assert service.stats()["batches"] == 0

    def test_bad_submit_rejected_before_admission(self, counters, graph):
        # an out-of-range submission fails alone (validated pre-admission,
        # mirroring the async twin): it never poisons co-batched queries
        index = counters["pspc"]
        service = QueryService(index, batch_size=2, max_wait=30.0)
        good = service.submit(0, 1)
        with pytest.raises(QueryError, match="out of range"):
            service.submit(graph.n + 5, 2)
        assert not good.done  # still pending, not poisoned
        service.flush()
        assert good.result(timeout=1.0) == index.query(0, 1)

    def test_kernel_failure_resolves_cobatched_waiters(self, counters, graph):
        # a genuine kernel failure must not strand co-batched waiters:
        # every handle carries the error and re-raises it
        index = counters["pspc"]

        class Exploding:
            n = index.n

            def query_batch(self, pairs):
                raise QueryError("kernel exploded")

        service = QueryService(Exploding(), batch_size=2, max_wait=30.0)
        good = service.submit(0, 1)
        with pytest.raises(QueryError, match="kernel exploded"):
            service.submit(2, 3)  # fills the batch; kernel raises
        assert good.done
        with pytest.raises(QueryError, match="kernel exploded"):
            good.result(timeout=1.0)
        assert service.pending == 0

    def test_bulk_sweep_does_not_stall_point_traffic(self, counters):
        # bulk kernels run outside the service lock: a long query_batch
        # must not hold back a concurrent submit()/result() past max_wait
        import threading
        import time as time_module

        index = counters["pspc"]

        class Slow:
            n = index.n

            def query_batch(self, pairs):
                time_module.sleep(0.05)
                return index.query_batch(pairs)

        service = QueryService(Slow(), batch_size=50, max_wait=0.01)
        latency = {}

        def bulk():
            service.query_batch([(0, 1)] * 500)  # 10 slow kernel calls

        def point():
            time_module.sleep(0.02)
            start = time_module.perf_counter()
            result = service.submit(0, 30).result()
            latency["point"] = time_module.perf_counter() - start
            assert result == index.query(0, 30)

        threads = [threading.Thread(target=bulk), threading.Thread(target=point)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # well under the ~0.5s the full bulk sweep takes
        assert latency["point"] < 0.25, latency


class TestDeprecatedShims:
    """The function-based builders survive as shims that warn and delegate."""

    def test_shims_warn_and_still_answer(self, graph):
        from repro.core.hpspc import build_hpspc, hpspc_index
        from repro.core.pspc import pspc_index
        from repro.ordering.degree import degree_order

        order = degree_order(graph)
        with pytest.warns(DeprecationWarning, match="build_hpspc"):
            labels, stats = build_hpspc(graph, order)
        assert stats.builder == "hpspc"
        with pytest.warns(DeprecationWarning, match="hpspc_index"):
            via_hpspc = hpspc_index(graph, order)
        with pytest.warns(DeprecationWarning, match="pspc_index"):
            via_pspc = pspc_index(graph, order)
        # canonical-label uniqueness: all three shim paths agree
        assert labels == via_hpspc == via_pspc


class TestSharedVerifier:
    @pytest.mark.parametrize("name", ("pspc", "hpspc", "directed"))
    def test_verify_against_bfs_delegates(self, name, counters):
        counters[name].verify_against_bfs(samples=25)

    def test_verify_counter_rejects_size_mismatch(self, counters, digraph):
        from repro.core.verify import verify_counter

        with pytest.raises(QueryError, match="vertices"):
            verify_counter(counters["pspc"], digraph)


class TestQueryServiceCacheAndClose:
    """The PR-4 satellites on the sync service: LRU cache + close semantics."""

    def test_cache_short_circuits_repeated_pairs(self, counters, graph):
        spy = _KernelSpy(counters["pspc"])
        with QueryService(spy, batch_size=1, cache_size=8) as service:
            first = service.query(0, 30)
            repeats = [service.query(0, 30) for _ in range(4)]
            stats = service.stats()
        assert all(r == first for r in repeats)
        assert spy.calls == 1  # four hits never reached the kernel
        assert stats["cache_hits"] == 4
        assert stats["cache_misses"] == 1
        assert stats["queries"] == 5

    def test_cache_disabled_by_default(self, counters):
        with QueryService(counters["pspc"], batch_size=1) as service:
            service.query(0, 30)
            service.query(0, 30)
            stats = service.stats()
        assert stats["cache_hits"] == 0
        assert stats["batches"] == 2

    def test_reversed_pair_hits_for_undirected_counters(self, counters):
        # regression: the point cache used to key on (s, t) literally, so
        # the reversed direction of a hot pair never hit even though an
        # undirected counter answers both identically
        index = counters["pspc"]
        spy = _KernelSpy(index)
        with QueryService(spy, batch_size=1, cache_size=8) as service:
            forward = service.query(3, 30)
            backward = service.query(30, 3)
            stats = service.stats()
        assert spy.calls == 1  # the reversed pair never reached the kernel
        assert stats["cache_hits"] == 1
        # the hit answers with the *requested* orientation
        assert (backward.s, backward.t) == (30, 3)
        assert (backward.dist, backward.count) == (forward.dist, forward.count)
        assert backward == index.query(30, 3)

    def test_directed_counters_keep_asymmetric_cache_keys(self, counters, digraph):
        directed = counters["directed"]
        s, t = 0, 7
        with QueryService(directed, batch_size=1, cache_size=8) as service:
            forward = service.query(s, t)
            backward = service.query(t, s)
            stats = service.stats()
        # s -> t and t -> s are different questions on a digraph: no hit
        assert stats["cache_hits"] == 0
        assert forward == directed.query(s, t)
        assert backward == directed.query(t, s)

    def test_cache_evicts_least_recently_used(self, counters, graph):
        spy = _KernelSpy(counters["pspc"])
        with QueryService(spy, batch_size=1, cache_size=2) as service:
            service.query(0, 1)
            service.query(0, 2)
            service.query(0, 3)  # evicts (0, 1)
            service.query(0, 1)  # miss again
            stats = service.stats()
        assert spy.calls == 4
        assert stats["cache_hits"] == 0

    def test_close_flushes_pending_submissions(self, counters):
        index = counters["pspc"]
        # huge batch + huge deadline: without close() the handle would
        # only resolve when result() observed the timeout
        service = QueryService(index, batch_size=1000, max_wait=60.0)
        handle = service.submit(0, 30)
        assert not handle.done
        assert not service.closed
        service.close()
        assert service.closed
        assert handle.done
        assert handle.result(timeout=0.1) == index.query(0, 30)
        with pytest.raises(QueryError, match="closed"):
            service.submit(1, 2)

    def test_close_is_idempotent(self, counters):
        service = QueryService(counters["pspc"])
        service.close()
        service.close()
        assert service.closed

    def test_close_refuses_submissions_even_when_final_flush_fails(self, counters):
        index = counters["pspc"]

        class Poisoned:
            n = index.n

            def query_batch(self, pairs):
                raise QueryError("kernel down")

        service = QueryService(Poisoned(), batch_size=1000, max_wait=60.0)
        service.submit(0, 1)
        with pytest.raises(QueryError, match="kernel down"):
            service.close()
        assert service.closed  # the failed flush must not reopen the service
        with pytest.raises(QueryError, match="closed"):
            service.submit(2, 3)
