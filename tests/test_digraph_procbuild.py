"""Equivalence suite for the process-parallel directed build backend.

The repository's central invariant, extended to the two-label digraph
index: for a fixed total order, ``engine="parallel"`` must produce the
**bit-identical** canonical directed ESPC index (same ``Lin``/``Lout``
store, same pruning counters, same per-vertex work units) that the
single-process vectorized kernels produce — on every bundled directed
generator, for any worker count, with and without landmarks, and across
the int64-overflow fallback.

Spawned workers make these tests slower than the in-process suites; the
generator matrix is kept to one instance per family.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.procbuild import build_pspc_directed_parallel
from repro.digraph.digraph import DiGraph
from repro.digraph.fastbuild import build_pspc_directed_vectorized
from repro.digraph.generators import (
    directed_barabasi_albert,
    directed_grid_road_network,
    directed_powerlaw_cluster,
    directed_watts_strogatz,
)
from repro.digraph.index import DirectedSPCIndex, degree_order_directed
from repro.digraph.labels import DirectedLabelIndex
from repro.errors import IndexBuildError

#: One small instance per directed family (mirrors test_digraph_fastbuild).
GENERATORS = {
    "directed_barabasi_albert": lambda: directed_barabasi_albert(120, 3, seed=5),
    "directed_watts_strogatz": lambda: directed_watts_strogatz(90, 6, 0.2, seed=6),
    "directed_powerlaw_cluster": lambda: directed_powerlaw_cluster(
        110, 3, 0.5, seed=7
    ),
    "directed_grid_road_network": lambda: directed_grid_road_network(
        9, 9, extra_edges=8, seed=8
    ),
}


def directed_diamond_chain(k: int) -> tuple[DiGraph, int]:
    """``k`` diamonds of forward arcs: ``spc(0, end) == 2**k`` (overflow)."""
    edges = []
    prev = 0
    next_id = 1
    for _ in range(k):
        a, b, end = next_id, next_id + 1, next_id + 2
        next_id += 3
        edges += [(prev, a), (prev, b), (a, end), (b, end)]
        prev = end
    return DiGraph(next_id, edges), prev


def assert_parallel_bit_identical(
    graph: DiGraph, workers: int, num_landmarks: int = 0
) -> None:
    """Parallel build == vectorized build: store, counters and work units."""
    order = degree_order_directed(graph)
    vec, vec_stats = build_pspc_directed_vectorized(
        graph, order, num_landmarks=num_landmarks
    )
    par, par_stats = build_pspc_directed_parallel(
        graph, order, num_landmarks=num_landmarks, workers=workers
    )
    assert par == vec
    assert par_stats.pruned_by_rank == vec_stats.pruned_by_rank
    assert par_stats.pruned_by_query == vec_stats.pruned_by_query
    assert par_stats.landmark_hits == vec_stats.landmark_hits
    assert par_stats.iteration_labels == vec_stats.iteration_labels
    assert par_stats.total_entries == vec_stats.total_entries
    assert len(par_stats.iteration_costs) == len(vec_stats.iteration_costs)
    for par_costs, vec_costs in zip(
        par_stats.iteration_costs, vec_stats.iteration_costs
    ):
        assert np.array_equal(par_costs, vec_costs)


@pytest.mark.parametrize("num_landmarks", [0, 4], ids=["nolm", "lm4"])
@pytest.mark.parametrize("name", sorted(GENERATORS))
class TestCrossEngineEquivalence:
    def test_bit_identical_index_and_counters(self, name, num_landmarks):
        assert_parallel_bit_identical(
            GENERATORS[name](), workers=2, num_landmarks=num_landmarks
        )


class TestWorkerCountIndependence:
    def test_one_worker_still_spawns_and_matches(self):
        assert_parallel_bit_identical(
            GENERATORS["directed_barabasi_albert"](), workers=1
        )

    def test_worker_count_does_not_change_the_index(self):
        # 3 workers over 90 vertices: uneven edge-balanced shards, including
        # the republish/remap path once the labels outgrow the seed capacity
        assert_parallel_bit_identical(GENERATORS["directed_watts_strogatz"](), workers=3)

    def test_more_workers_than_vertices(self):
        graph = DiGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        assert_parallel_bit_identical(graph, workers=8)

    def test_empty_and_trivial_graphs(self):
        for graph in (DiGraph(0, []), DiGraph(1, []), DiGraph(3, [])):
            assert_parallel_bit_identical(graph, workers=2)


class TestOverflowFallback:
    def test_falls_back_to_reference_and_tuple_labels(self):
        graph, end = directed_diamond_chain(70)  # 2**70 paths: beyond int64
        labels, stats = build_pspc_directed_parallel(
            graph, degree_order_directed(graph), workers=2
        )
        assert isinstance(labels, DirectedLabelIndex)
        assert stats.engine == "reference"  # the exact loops took over
        vec_labels, _ = build_pspc_directed_vectorized(
            graph, degree_order_directed(graph)
        )
        assert labels == vec_labels  # both fallbacks reach the same index
        index = DirectedSPCIndex(labels, stats, graph)
        assert index.spc(0, end) == 2**70

    def test_facade_fallback_route(self):
        graph, end = directed_diamond_chain(70)
        index = DirectedSPCIndex.build(graph, engine="parallel", workers=2)
        assert index.labels.kind == "directed"
        assert index.stats.engine == "reference"
        assert index.spc(0, end) == 2**70


class TestFacadeAndConfig:
    def test_engine_and_workers_recorded_and_round_tripped(self, tmp_path):
        graph = GENERATORS["directed_barabasi_albert"]()
        index = DirectedSPCIndex.build(graph, engine="parallel", workers=2)
        assert index.config.engine == "parallel"
        assert index.config.workers == 2
        assert index.stats.engine == "parallel"
        path = tmp_path / "directed-parallel.npz"
        index.save(path)
        loaded = DirectedSPCIndex.load(path)
        assert loaded.config.engine == "parallel"
        assert loaded.config.workers == 2
        assert loaded.config.method == "directed"
        assert loaded.labels == index.labels
        assert loaded.stats.total_work == index.stats.total_work

    def test_matches_default_engine_through_the_facade(self):
        graph = GENERATORS["directed_powerlaw_cluster"]()
        par = DirectedSPCIndex.build(graph, engine="parallel", workers=2)
        vec = DirectedSPCIndex.build(graph)
        assert par.labels == vec.labels
        assert par.stats.total_work == vec.stats.total_work

    def test_build_index_api_route(self):
        from repro.api import build_index

        graph = GENERATORS["directed_grid_road_network"]()
        par = build_index(graph, method="directed", engine="parallel", workers=2)
        vec = build_index(graph, method="directed")
        assert par.labels == vec.labels

    def test_validation(self):
        graph = GENERATORS["directed_barabasi_albert"]()
        order = degree_order_directed(graph)
        with pytest.raises(IndexBuildError):
            build_pspc_directed_parallel(graph, order, workers=0)
        with pytest.raises(IndexBuildError):
            build_pspc_directed_parallel(
                graph, degree_order_directed(DiGraph(3, [(0, 1)]))
            )
        with pytest.raises(IndexBuildError):
            DirectedSPCIndex.build(graph, engine="teleport")


class TestHygiene:
    def test_no_shm_blocks_leak(self, assert_no_shm_leak):
        graph = GENERATORS["directed_barabasi_albert"]()
        build_pspc_directed_parallel(graph, degree_order_directed(graph), workers=2)

    def test_spawn_and_construction_phases_recorded(self):
        graph = GENERATORS["directed_barabasi_albert"]()
        _, stats = build_pspc_directed_parallel(
            graph, degree_order_directed(graph), workers=2
        )
        assert stats.phase("spawn") > 0.0
        assert stats.phase("construction") > 0.0
