"""Unit tests for the PSPC propagation builder — the paper's core claims."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hpspc import hpspc_index
from repro.core.parallel import SerialBackend, ThreadBackend
from repro.core.pspc import build_pspc, pspc_index
from repro.core.queries import spc_query
from repro.errors import IndexBuildError
from repro.graph.generators import (
    barabasi_albert,
    cycle_graph,
    grid_road_network,
    path_graph,
    watts_strogatz,
)
from repro.graph.graph import Graph
from repro.graph.properties import diameter_exact
from repro.graph.traversal import spc_pair
from repro.ordering.degree import degree_order
from repro.ordering.hybrid import hybrid_order

# this module deliberately exercises the deprecated function-based builder
# shims (`pspc_index`/`hpspc_index`); the facade path lives in test_api.py
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestEquivalenceWithBaseline:
    """The repository's central invariant: PSPC builds the HP-SPC index."""

    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path_graph(10),
            lambda: cycle_graph(11),
            lambda: barabasi_albert(120, 3, seed=2),
            lambda: watts_strogatz(80, 4, 0.2, seed=3),
            lambda: grid_road_network(6, 7, extra_edges=4, seed=4),
        ],
        ids=["path", "cycle", "ba", "ws", "grid"],
    )
    def test_identical_to_hpspc(self, graph_factory):
        graph = graph_factory()
        order = degree_order(graph)
        assert pspc_index(graph, order) == hpspc_index(graph, order)

    def test_identical_under_hybrid_order(self, road_graph):
        order = hybrid_order(road_graph)
        assert pspc_index(road_graph, order) == hpspc_index(road_graph, order)

    def test_pull_equals_push(self, social_graph):
        order = degree_order(social_graph)
        pull = pspc_index(social_graph, order, paradigm="pull")
        push = pspc_index(social_graph, order, paradigm="push")
        assert pull == push

    def test_thread_backend_does_not_change_index(self, social_graph):
        order = degree_order(social_graph)
        serial = pspc_index(social_graph, order, backend=SerialBackend())
        backend = ThreadBackend(4)
        threaded = pspc_index(social_graph, order, backend=backend)
        backend.close()
        assert serial == threaded

    def test_landmarks_do_not_change_index(self, social_graph):
        order = degree_order(social_graph)
        plain = pspc_index(social_graph, order, num_landmarks=0)
        filtered = pspc_index(social_graph, order, num_landmarks=20)
        assert plain == filtered


class TestCorrectness:
    def test_all_pairs_on_paper_graph(self, paper_graph, paper_order):
        index = pspc_index(paper_graph, paper_order)
        for s in range(10):
            for t in range(10):
                result = spc_query(index, s, t)
                assert (result.dist, result.count) == spc_pair(paper_graph, s, t)

    def test_weighted_counting(self):
        g = Graph(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)], vertex_weights=[1, 2, 1, 3, 1])
        index = pspc_index(g, degree_order(g))
        # 0->3: 0-1-3 (x2) + 0-2-3 (x1) = 3; 0->4 adds internal vertex 3 (x3)
        assert spc_query(index, 0, 3).count == 3
        assert spc_query(index, 0, 4).count == 9

    def test_empty_graph(self):
        g = Graph(0, [])
        index = pspc_index(g, degree_order(g))
        assert index.total_entries() == 0

    def test_single_vertex(self):
        g = Graph(1, [])
        index = pspc_index(g, degree_order(g))
        assert spc_query(index, 0, 0).count == 1


class TestIterationStructure:
    def test_iterations_bounded_by_diameter(self, social_graph):
        order = degree_order(social_graph)
        _, stats = build_pspc(social_graph, order)
        # one final empty-propagation round may follow the last fresh label
        assert stats.n_iterations <= diameter_exact(social_graph) + 1

    def test_iteration_label_counts_sum_to_non_self_entries(self, social_graph):
        index, stats = build_pspc(social_graph, degree_order(social_graph))
        assert sum(stats.iteration_labels) == index.total_entries() - social_graph.n

    def test_max_iterations_enforced(self, social_graph):
        with pytest.raises(IndexBuildError):
            build_pspc(social_graph, degree_order(social_graph), max_iterations=1)

    def test_work_recording_optional(self, social_graph):
        _, stats = build_pspc(social_graph, degree_order(social_graph), record_work=False)
        assert stats.iteration_costs == []
        assert stats.iteration_labels  # label counts still tracked

    def test_work_units_positive(self, social_graph):
        _, stats = build_pspc(social_graph, degree_order(social_graph))
        assert stats.total_work > 0
        assert all(costs.min() >= 0 for costs in stats.iteration_costs)

    def test_pruning_counters_populated(self, social_graph):
        _, stats = build_pspc(social_graph, degree_order(social_graph))
        assert stats.pruned_by_rank > 0
        assert stats.pruned_by_query > 0

    def test_landmark_hits_counted(self, social_graph):
        _, stats = build_pspc(social_graph, degree_order(social_graph), num_landmarks=10)
        assert stats.landmark_hits > 0
        assert stats.phase("landmarks") > 0.0


class TestValidation:
    def test_unknown_paradigm_rejected(self, social_graph):
        with pytest.raises(IndexBuildError):
            build_pspc(social_graph, degree_order(social_graph), paradigm="teleport")

    def test_mismatched_order_rejected(self, social_graph, paper_order):
        with pytest.raises(IndexBuildError):
            build_pspc(social_graph, paper_order)
