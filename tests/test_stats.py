"""Unit tests for BuildStats and PhaseTimer."""

from __future__ import annotations

import numpy as np

from repro.core.stats import BuildStats, PhaseTimer


class TestBuildStats:
    def test_defaults(self):
        stats = BuildStats()
        assert stats.n_iterations == 0
        assert stats.total_work == 0
        assert stats.total_seconds == 0.0
        assert stats.phase("anything") == 0.0

    def test_total_work_sums_iterations(self):
        stats = BuildStats()
        stats.iteration_costs.append(np.array([1, 2, 3]))
        stats.iteration_costs.append(np.array([4, 0, 0]))
        assert stats.n_iterations == 2
        assert stats.total_work == 10

    def test_merge_phase_accumulates(self):
        stats = BuildStats()
        stats.merge_phase("order", 0.5)
        stats.merge_phase("order", 0.25)
        assert stats.phase("order") == 0.75
        assert stats.total_seconds == 0.75

    def test_phase_timer_records_elapsed(self):
        stats = BuildStats()
        with PhaseTimer(stats, "construction"):
            sum(range(1000))
        assert stats.phase("construction") > 0.0

    def test_phase_timer_nests_additively(self):
        stats = BuildStats()
        with PhaseTimer(stats, "a"):
            pass
        first = stats.phase("a")
        with PhaseTimer(stats, "a"):
            pass
        assert stats.phase("a") >= first

    def test_phase_timer_records_on_exception(self):
        stats = BuildStats()
        try:
            with PhaseTimer(stats, "x"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert stats.phase("x") > 0.0
