"""Failure-injection tests: corrupt files, truncated data, bad state.

A production library fails loudly and precisely; these tests pin the
behaviour on the unhappy paths that unit tests of the happy path miss.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.compact import CompactLabelIndex
from repro.core.index import PSPCIndex
from repro.core.labels import LabelIndex
from repro.graph import io as graph_io
from repro.graph.generators import barabasi_albert
from repro.graph.graph import Graph


@pytest.fixture
def built(tmp_path):
    graph = barabasi_albert(40, 2, seed=3)
    index = PSPCIndex.build(graph)
    return graph, index, tmp_path


class TestCorruptIndexFiles:
    def test_truncated_pickle(self, built):
        _, index, tmp_path = built
        path = tmp_path / "idx.pkl"
        index.save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):  # unpickling error surface
            PSPCIndex.load(path)

    def test_wrong_payload_type(self, built):
        _, _, tmp_path = built
        path = tmp_path / "idx.pkl"
        with path.open("wb") as handle:
            pickle.dump(["not", "an", "index"], handle)
        with pytest.raises(Exception):
            PSPCIndex.load(path)

    def test_label_index_with_tampered_order(self, built):
        from repro.core import store

        _, index, tmp_path = built
        path = tmp_path / "l.npz"
        index.labels.save(path)
        kind, arrays, meta = store.read_payload(path)
        arrays["order"] = arrays["order"][:-1]  # no longer a permutation
        store.write_payload(path, kind, arrays, meta=meta)
        from repro.errors import ReproError

        # either the permutation check (OrderingError) or the label-list
        # length check (IndexStateError) must fire — both are ReproErrors
        with pytest.raises(ReproError):
            LabelIndex.load(path)

    def test_foreign_npz_rejected(self, built):
        from repro.errors import PersistenceError

        _, _, tmp_path = built
        path = tmp_path / "foreign.npz"
        np.savez_compressed(path, order=np.arange(3))
        with pytest.raises(PersistenceError):
            PSPCIndex.load(path)

    def test_object_array_member_rejected(self, built):
        # a pickled (object-dtype) payload array must surface as
        # PersistenceError, not the raw allow_pickle ValueError
        import json

        from repro.core import store
        from repro.errors import PersistenceError

        _, _, tmp_path = built
        path = tmp_path / "obj.npz"
        meta = json.dumps(
            {"format": store.FORMAT_NAME, "version": store.FORMAT_VERSION, "kind": "tuple"}
        )
        np.savez_compressed(
            path, __meta__=np.array(meta), bad=np.array([{"a": 1}], dtype=object)
        )
        with pytest.raises(PersistenceError):
            store.read_payload(path)

    def test_wrong_kind_rejected(self, built):
        from repro.errors import PersistenceError

        _, index, tmp_path = built
        path = tmp_path / "labels.npz"
        index.labels.save(path)  # a bare "tuple" store, not a full index file
        with pytest.raises(PersistenceError):
            PSPCIndex.load(path)


class TestCorruptGraphFiles:
    def test_npz_missing_arrays(self, tmp_path):
        path = tmp_path / "g.npz"
        np.savez_compressed(path, indptr=np.array([0, 0]))
        from repro.errors import GraphFormatError

        with pytest.raises(GraphFormatError):
            graph_io.load_npz(path)

    def test_binary_garbage_edge_list(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("\x00\x01 \x02\x03\n")
        from repro.errors import GraphFormatError

        with pytest.raises(GraphFormatError):
            graph_io.read_edge_list(path)


class TestCompactRobustness:
    def test_compact_npz_missing_meta(self, tmp_path):
        from repro.errors import PersistenceError

        path = tmp_path / "c.npz"
        np.savez_compressed(path, order=np.arange(3))
        with pytest.raises(PersistenceError):
            CompactLabelIndex.load(path)

    def test_freeze_of_hand_built_index_round_trips(self):
        # a minimal hand-built valid index survives freeze/thaw untouched
        from repro.ordering.base import VertexOrder

        order = VertexOrder.from_order(np.array([0, 1]), 2)
        labels = LabelIndex(order, [[(0, 0, 1)], [(0, 1, 1), (1, 0, 1)]])
        compact = CompactLabelIndex.from_index(labels)
        assert compact.to_label_index() == labels


class TestStateErrors:
    def test_query_before_graph_attached(self, built):
        graph, index, tmp_path = built
        path = tmp_path / "i.pkl"
        index.save(path)
        loaded = PSPCIndex.load(path)
        # queries work without the graph; only verification needs it
        assert loaded.query(0, 1) == index.query(0, 1)

    def test_graph_immutable_arrays_not_required_but_copies_safe(self):
        g = Graph(3, [(0, 1), (1, 2)])
        before = g.degrees().copy()
        neighbors = g.neighbors(1)
        _ = neighbors + 1  # arithmetic on a copy leaves CSR untouched
        assert np.array_equal(g.degrees(), before)
