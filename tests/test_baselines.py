"""Unit tests for the index-free baselines (online BFS, bidirectional BFS)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bfs_spc import OnlineBFSCounter
from repro.baselines.bidirectional import BidirectionalBFSCounter, bidirectional_spc
from repro.graph.generators import (
    barabasi_albert,
    cycle_graph,
    grid_road_network,
    path_graph,
)
from repro.graph.graph import Graph
from repro.graph.traversal import UNREACHABLE, spc_pair


class TestOnlineBFS:
    def test_matches_oracle(self, diamond):
        counter = OnlineBFSCounter(diamond)
        assert counter.spc(0, 3) == 2
        assert counter.distance(0, 3) == 2
        assert counter.n == 4

    def test_batch(self, diamond):
        results = OnlineBFSCounter(diamond).query_batch([(0, 3), (1, 1)])
        assert [r.count for r in results] == [2, 1]


class TestBidirectional:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path_graph(11),
            lambda: cycle_graph(12),
            lambda: barabasi_albert(90, 3, seed=3),
            lambda: grid_road_network(6, 6, extra_edges=3, seed=1),
        ],
        ids=["path", "cycle", "ba", "grid"],
    )
    def test_all_pairs_match_unidirectional(self, graph_factory):
        graph = graph_factory()
        for s in range(0, graph.n, 3):
            for t in range(0, graph.n, 4):
                assert bidirectional_spc(graph, s, t) == spc_pair(graph, s, t), (s, t)

    def test_identity(self, triangle):
        assert bidirectional_spc(triangle, 2, 2) == (0, 1)

    def test_unreachable(self, two_components):
        assert bidirectional_spc(two_components, 0, 4) == (UNREACHABLE, 0)

    def test_weighted_graph(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)], vertex_weights=[1, 2, 3, 1])
        assert bidirectional_spc(g, 0, 3) == spc_pair(g, 0, 3) == (2, 5)

    def test_asymmetric_expansion(self):
        # star forces one side's frontier to explode: exercises the
        # smaller-frontier-first branch in both directions
        g = Graph(7, [(0, 1), (0, 2), (0, 3), (0, 4), (4, 5), (5, 6)])
        for s in range(7):
            for t in range(7):
                assert bidirectional_spc(g, s, t) == spc_pair(g, s, t)

    def test_counter_wrapper(self, diamond):
        counter = BidirectionalBFSCounter(diamond)
        assert counter.spc(0, 3) == 2
        assert counter.distance(0, 0) == 0
        assert counter.n == 4
        assert [r.count for r in counter.query_batch([(0, 3)])] == [2]

    def test_random_pairs_on_larger_graph(self):
        g = barabasi_albert(300, 4, seed=5)
        rng = np.random.default_rng(7)
        for _ in range(60):
            s, t = (int(x) for x in rng.integers(g.n, size=2))
            assert bidirectional_spc(g, s, t) == spc_pair(g, s, t)
