"""The multi-process serving subsystem: shm segments, worker pool, asyncio.

Covers the PR's acceptance surface:

* shm publish/attach round-trips equal the source store bit-for-bit, for
  the undirected compact store AND the directed two-label variant;
* closed/unlinked segments leave nothing behind in ``/dev/shm``;
* :class:`WorkerPool` answers match the BFS ground truth
  (``verify_counter``) on every bundled generator family and are identical
  to single-process ``query_batch``;
* worker crashes are detected and respawned exactly once per slot;
* :class:`AsyncQueryService` stays correct under 1000 concurrent submits
  and mirrors the sync service's close semantics with ``aclose``;
* the stdlib HTTP front-end and the ``python -m repro serve`` entry point
  answer over loopback and shut down cleanly.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.index import PSPCIndex
from repro.core.verify import verify_counter
from repro.digraph.digraph import DiGraph
from repro.digraph.index import DirectedSPCIndex
from repro.digraph.labels import CompactDirectedLabelIndex
from repro.errors import QueryError, ServeError
from repro.graph.generators import (
    barabasi_albert,
    grid_road_network,
    powerlaw_cluster,
    watts_strogatz,
)
from repro.serve import (
    SEGMENT_PREFIX,
    AsyncQueryService,
    HttpFrontend,
    LRUCache,
    ShmIndexSegment,
    WorkerPool,
)

#: One small instance per bundled generator family (mirrors test_store).
GENERATORS = {
    "barabasi_albert": lambda: barabasi_albert(120, 3, seed=5),
    "watts_strogatz": lambda: watts_strogatz(90, 6, 0.2, seed=6),
    "powerlaw_cluster": lambda: powerlaw_cluster(110, 3, 0.5, seed=7),
    "grid_road_network": lambda: grid_road_network(9, 9, extra_edges=8, seed=8),
}

_DEV_SHM = Path("/dev/shm")


def _segment_files() -> set[str]:
    if not _DEV_SHM.is_dir():  # pragma: no cover - non-Linux
        return set()
    return {p.name for p in _DEV_SHM.iterdir() if p.name.startswith(SEGMENT_PREFIX)}


def _random_pairs(n: int, count: int, seed: int = 3) -> list[tuple[int, int]]:
    rng = np.random.default_rng(seed)
    return [(int(s), int(t)) for s, t in rng.integers(n, size=(count, 2))]


@pytest.fixture(scope="module")
def served_index(request) -> PSPCIndex:
    """One shared small index for the process-spawning tests."""
    return PSPCIndex.build(barabasi_albert(150, 3, seed=11), num_landmarks=10)


@pytest.fixture(scope="module")
def directed_index() -> DirectedSPCIndex:
    rng = np.random.default_rng(17)
    edges = [(int(u), int(v)) for u, v in rng.integers(60, size=(150, 2)) if u != v]
    return DirectedSPCIndex.build(DiGraph(60, edges))


# ----------------------------------------------------------------------
# shm segments
# ----------------------------------------------------------------------
class TestShmSegment:
    def test_publish_attach_round_trip_bit_for_bit(self, served_index):
        with ShmIndexSegment.publish(served_index) as segment:
            with ShmIndexSegment.attach(segment.manifest) as twin:
                # CompactLabelIndex equality is np.array_equal on every array
                assert twin.store == served_index.store
                assert not twin.store.hubs.flags.writeable
                assert twin.store.query(0, 50) == served_index.query(0, 50)

    def test_publish_attach_directed_round_trip(self, directed_index):
        # directed builds freeze to the compact store by default
        assert isinstance(directed_index.labels, CompactDirectedLabelIndex)
        with ShmIndexSegment.publish(directed_index) as segment:
            assert segment.manifest["kind"] == "directed-compact"
            with ShmIndexSegment.attach(segment.manifest) as twin:
                assert twin.store == directed_index.labels
                tuples = directed_index.labels.to_directed_index()
                assert twin.store.to_directed_index() == tuples
                for s, t in _random_pairs(directed_index.n, 50):
                    assert twin.store.query(s, t) == directed_index.query(s, t)

    def test_manifest_json_round_trip(self, served_index):
        with ShmIndexSegment.publish(served_index) as segment:
            with ShmIndexSegment.attach(segment.manifest_json()) as twin:
                assert twin.store == served_index.store

    def test_no_dev_shm_leak_after_close(self, served_index):
        before = _segment_files()
        # reprolint: disable=R001 (manual close/unlink lifecycle is the subject under test)
        segment = ShmIndexSegment.publish(served_index)
        name = segment.name
        if _DEV_SHM.is_dir():
            assert name in _segment_files()
        segment.close()
        segment.unlink()
        assert _segment_files() == before
        with pytest.raises(ServeError):
            # reprolint: disable=R001 (attach on an unlinked segment must raise)
            ShmIndexSegment.attach({**segment.manifest})

    def test_close_is_idempotent_and_store_raises(self, served_index):
        # reprolint: disable=R001 (idempotent close/unlink is the behaviour being asserted)
        segment = ShmIndexSegment.publish(served_index)
        segment.close()
        segment.close()
        with pytest.raises(ServeError):
            _ = segment.store
        segment.unlink()
        segment.unlink()

    def test_attach_rejects_garbage(self):
        with pytest.raises(ServeError):
            # reprolint: disable=R001 (attach on a bad manifest must raise, nothing to release)
            ShmIndexSegment.attach({"format": "something-else"})
        with pytest.raises(ServeError):
            # reprolint: disable=R001 (attach on malformed json must raise, nothing to release)
            ShmIndexSegment.attach("{not json")

    def test_tuple_store_is_frozen_on_publish(self, served_index):
        tuple_index = PSPCIndex.build(
            barabasi_albert(60, 3, seed=2), store="tuple"
        )
        with ShmIndexSegment.publish(tuple_index) as segment:
            assert segment.manifest["kind"] == "compact"
            with ShmIndexSegment.attach(segment.manifest) as twin:
                assert twin.store.to_label_index() == tuple_index.store

    def test_publish_rejects_unknown_objects(self):
        with pytest.raises(ServeError):
            # reprolint: disable=R001 (publish of an unknown object must raise, nothing to release)
            ShmIndexSegment.publish(object())


# ----------------------------------------------------------------------
# worker pool
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_matches_ground_truth_on_every_generator(self):
        for name, make in GENERATORS.items():
            graph = make()
            index = PSPCIndex.build(graph)
            pairs = _random_pairs(graph.n, 300)
            expected = index.query_batch(pairs)
            with WorkerPool(index, workers=2) as pool:
                assert pool.query_batch(pairs) == expected, name
                verify_counter(pool, graph, samples=25)

    def test_directed_pool_matches_ground_truth(self, directed_index):
        with WorkerPool(directed_index, workers=1) as pool:
            pairs = _random_pairs(directed_index.n, 200)
            assert pool.query_batch(pairs) == directed_index.query_batch(pairs)

    def test_sharding_is_contiguous_and_ordered(self, served_index):
        pairs = _random_pairs(served_index.n, 101)
        with WorkerPool(served_index, workers=3) as pool:
            results = pool.query_batch(pairs)
            assert [(r.s, r.t) for r in results] == pairs
            stats = pool.stats()
            # ceil(101 / 3) = 34 pairs on the first two workers, 33 on the last
            assert [w["queries"] for w in stats["per_worker"]] == [34, 34, 33]
            assert stats["queries"] == 101
            assert stats["batches"] == 1

    def test_worker_crash_respawns_and_recovers(self, served_index):
        pairs = _random_pairs(served_index.n, 64)
        expected = served_index.query_batch(pairs)
        with WorkerPool(served_index, workers=2) as pool:
            victim = pool._slots[0].pid
            os.kill(victim, signal.SIGKILL)
            assert pool.query_batch(pairs) == expected
            stats = pool.stats()
            assert stats["respawns"] == 1
            assert stats["per_worker"][0]["pid"] != victim

    def test_respawn_budget_bounds_crash_loops_not_uptime(self, served_index):
        # regression: max_respawns used to be a per-slot *lifetime* budget,
        # so a long-lived server died on the second isolated crash of one
        # slot no matter how far apart.  A completed batch must reopen the
        # budget: the pool survives arbitrarily many crash/recover cycles,
        # while the streak bound still stops genuine crash loops.
        pairs = _random_pairs(served_index.n, 48)
        expected = served_index.query_batch(pairs)
        with WorkerPool(served_index, workers=2, max_respawns=1) as pool:
            for round_number in range(3):
                os.kill(pool._slots[0].pid, signal.SIGKILL)
                assert pool.query_batch(pairs) == expected, round_number
            stats = pool.stats()
            # every crash respawned (lifetime counter keeps reporting them)
            assert stats["respawns"] == 3
            assert all(slot.crash_streak == 0 for slot in pool._slots)

    def test_exhausted_respawn_budget_degrades_instead_of_raising(self, served_index):
        # max_respawns=0: the very first crash exceeds the streak budget.
        # The slot is retired — but the batch is still answered correctly
        # by the surviving worker + in-process fallback, and the pool
        # reports the degradation instead of failing requests.
        pairs = _random_pairs(served_index.n, 16)
        with WorkerPool(served_index, workers=2, max_respawns=0) as pool:
            os.kill(pool._slots[0].pid, signal.SIGKILL)
            assert pool.query_batch(pairs) == served_index.query_batch(pairs)
            assert pool.health() == "degraded"
            stats = pool.stats()
            assert stats["live_workers"] == 1
            assert stats["retired_workers"] == 1
            assert stats["per_worker"][0]["retired"] is True
            # later batches re-shard over the survivor only, still correct
            more = _random_pairs(served_index.n, 32, seed=5)
            assert pool.query_batch(more) == served_index.query_batch(more)

    def test_all_slots_retired_serves_in_process_critical(self, served_index):
        pairs = _random_pairs(served_index.n, 24)
        with WorkerPool(served_index, workers=2, max_respawns=0) as pool:
            for slot in pool._slots:
                os.kill(slot.pid, signal.SIGKILL)
            assert pool.query_batch(pairs) == served_index.query_batch(pairs)
            assert pool.health() == "critical"
            stats = pool.stats()
            assert stats["live_workers"] == 0
            assert stats["fallback_queries"] >= len(pairs)

    def test_validation_and_lifecycle(self, served_index):
        with pytest.raises(ServeError):
            WorkerPool(served_index, workers=0)
        with WorkerPool(served_index, workers=1) as pool:
            assert pool.query_batch([]) == []
            with pytest.raises(QueryError):
                pool.query_batch([(0, served_index.n)])
            assert pool.query(0, 5) == served_index.query(0, 5)
        with pytest.raises(ServeError):
            pool.query_batch([(0, 1)])

    def test_no_shm_leak_after_close(self, served_index):
        before = _segment_files()
        pool = WorkerPool(served_index, workers=1)
        pool.query_batch(_random_pairs(served_index.n, 16))
        pool.close()
        pool.close()  # idempotent
        assert _segment_files() == before


# ----------------------------------------------------------------------
# async service
# ----------------------------------------------------------------------
class TestAsyncQueryService:
    def test_thousand_concurrent_submits(self, served_index):
        pairs = _random_pairs(served_index.n, 1000)
        expected = served_index.query_batch(pairs)

        async def main():
            async with AsyncQueryService(served_index, batch_size=64) as service:
                results = await asyncio.gather(
                    *(service.submit(s, t) for s, t in pairs)
                )
                return list(results), service.stats()

        results, stats = asyncio.run(main())
        assert results == expected
        assert stats["queries"] == 1000
        # admission batching really happened: far fewer kernel calls than
        # queries, each batch bounded by batch_size
        assert stats["batches"] >= 1000 // 64
        assert stats["batches"] < 1000
        assert stats["mean_batch_size"] <= 64

    def test_bulk_path_matches_direct(self, served_index):
        pairs = _random_pairs(served_index.n, 500)

        async def main():
            async with AsyncQueryService(served_index, batch_size=128) as service:
                return await service.query_batch(pairs), service.stats()

        results, stats = asyncio.run(main())
        assert results == served_index.query_batch(pairs)
        assert stats["bulk_flushes"] == 4  # ceil(500 / 128)

    def test_timeout_flush_and_aclose_semantics(self, served_index):
        async def main():
            service = AsyncQueryService(served_index, batch_size=1000, max_wait=0.01)
            # an unfilled batch flushes on the admission deadline
            result = await asyncio.wait_for(service.submit(0, 5), timeout=5.0)
            assert result == served_index.query(0, 5)
            assert service.stats()["timeout_flushes"] == 1
            # aclose flushes stragglers instead of stranding them
            waiter = asyncio.ensure_future(service.submit(1, 7))
            await asyncio.sleep(0)  # let the submit enqueue
            await service.aclose()
            assert (await waiter) == served_index.query(1, 7)
            assert service.closed
            with pytest.raises(QueryError):
                await service.submit(2, 3)

        asyncio.run(main())

    def test_cache_short_circuits_kernel(self, served_index):
        async def main():
            async with AsyncQueryService(
                served_index, batch_size=4, cache_size=16
            ) as service:
                first = [await service.submit(0, 9) for _ in range(5)]
                stats = service.stats()
                return first, stats

        results, stats = asyncio.run(main())
        assert all(r == served_index.query(0, 9) for r in results)
        assert stats["cache_hits"] == 4
        assert stats["cache_misses"] == 1
        assert stats["batches"] == 1

    def test_reversed_pair_hits_for_undirected_counters(self, served_index):
        # regression: same canonical-key fix as the sync service — the
        # reversed direction of a hot pair must hit the point cache
        async def main():
            async with AsyncQueryService(
                served_index, batch_size=4, cache_size=16
            ) as service:
                forward = await service.submit(2, 9)
                backward = await service.submit(9, 2)
                return forward, backward, service.stats()

        forward, backward, stats = asyncio.run(main())
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 1
        assert (backward.s, backward.t) == (9, 2)
        assert backward == served_index.query(9, 2)
        assert (forward.dist, forward.count) == (backward.dist, backward.count)

    def test_directed_counter_keeps_asymmetric_cache_keys(self, directed_index):
        async def main():
            async with AsyncQueryService(
                directed_index, batch_size=4, cache_size=16
            ) as service:
                forward = await service.submit(0, 7)
                backward = await service.submit(7, 0)
                return forward, backward, service.stats()

        forward, backward, stats = asyncio.run(main())
        # a digraph answers s -> t and t -> s differently: no cross-hit
        assert stats["cache_hits"] == 0
        assert forward == directed_index.query(0, 7)
        assert backward == directed_index.query(7, 0)

    def test_pool_backed_service(self, served_index):
        pairs = _random_pairs(served_index.n, 300)
        expected = served_index.query_batch(pairs)

        async def main():
            async with AsyncQueryService(
                served_index, workers=2, batch_size=64
            ) as service:
                results = await asyncio.gather(
                    *(service.submit(s, t) for s, t in pairs)
                )
                return list(results), service.stats()

        results, stats = asyncio.run(main())
        assert results == expected
        assert stats["pool"]["workers"] == 2
        assert stats["pool"]["queries"] == 300
        assert _segment_files() == set()  # aclose unlinked the segment


# ----------------------------------------------------------------------
# LRU cache unit behaviour
# ----------------------------------------------------------------------
class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b", the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["entries"] == 2

    def test_capacity_zero_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0


# ----------------------------------------------------------------------
# HTTP front-end
# ----------------------------------------------------------------------
async def _http_request(port: int, method: str, path: str, body: bytes = b"") -> tuple[int, dict]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: 127.0.0.1\r\nContent-Length: {len(body)}\r\n\r\n"
        ).encode()
        + body
    )
    await writer.drain()
    status_line = (await reader.readline()).decode()
    status = int(status_line.split()[1])
    while (await reader.readline()).strip():
        pass  # drain headers
    payload = await reader.read()
    writer.close()
    await writer.wait_closed()
    return status, json.loads(payload)


class TestHttpFrontend:
    def test_routes_over_loopback(self, served_index):
        from repro.serve.http import serve

        async def main():
            service = AsyncQueryService(served_index, batch_size=16)
            ready: asyncio.Future = asyncio.get_running_loop().create_future()
            stop = asyncio.Event()
            server_task = asyncio.ensure_future(
                serve(service, "127.0.0.1", 0, ready=ready, stop=stop)
            )
            _, port = await asyncio.wait_for(ready, timeout=10)

            status, health = await _http_request(port, "GET", "/healthz")
            assert (status, health["status"]) == (200, "ok")
            assert health["n"] == served_index.n

            status, point = await _http_request(port, "GET", "/query?s=0&t=5")
            assert status == 200

            body = json.dumps({"pairs": [[0, 5], [3, 7], [2, 2]]}).encode()
            status, batch = await _http_request(port, "POST", "/query_batch", body)
            assert status == 200 and len(batch["results"]) == 3

            status, stats = await _http_request(port, "GET", "/stats")
            assert status == 200 and stats["batches"] >= 1

            status, err = await _http_request(port, "GET", "/query?s=0")
            assert status == 400 and "t" in err["error"]
            status, err = await _http_request(port, "GET", "/query?s=0&t=999999")
            assert status == 400
            status, _ = await _http_request(port, "GET", "/nope")
            assert status == 404
            status, _ = await _http_request(port, "POST", "/query")
            assert status == 405

            stop.set()
            await asyncio.wait_for(server_task, timeout=10)
            return point, batch

        point, batch = asyncio.run(main())
        assert point["count"] == served_index.query(0, 5).count
        expected = served_index.query_batch([(0, 5), (3, 7), (2, 2)])
        assert [(r["dist"], r["count"]) for r in batch["results"]] == [
            (r.dist, r.count) for r in expected
        ]


class TestHttpUnhappyPaths:
    """Malformed/hostile clients map to precise 4xx codes, never a 500."""

    @staticmethod
    async def _serve(service):
        from repro.serve.http import serve

        ready: asyncio.Future = asyncio.get_running_loop().create_future()
        stop = asyncio.Event()
        task = asyncio.ensure_future(serve(service, "127.0.0.1", 0, ready=ready, stop=stop))
        _, port = await asyncio.wait_for(ready, timeout=10)
        return port, stop, task

    def test_bad_framing_and_method_mismatch_on_every_route(self, served_index):
        async def main():
            service = AsyncQueryService(served_index, batch_size=16)
            port, stop, task = await self._serve(service)

            async def raw(request: bytes) -> int:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(request)
                await writer.drain()
                status = int((await reader.readline()).split()[1])
                writer.close()
                await writer.wait_closed()
                return status

            # oversized declared body: rejected from the header alone
            assert await raw(
                b"POST /query_batch HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"
            ) == 413
            # negative and garbled Content-Length
            assert await raw(
                b"POST /query_batch HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
            ) == 400
            assert await raw(
                b"POST /query_batch HTTP/1.1\r\nContent-Length: abc\r\n\r\n"
            ) == 400
            # wrong method on every route
            for request in (
                b"POST /query HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
                b"GET /query_batch HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
                b"POST /stats HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
                b"POST /metrics HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
                b"POST /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
            ):
                assert await raw(request) == 405
            # the server survived all of it
            status, _ = await _http_request(port, "GET", "/query?s=0&t=5")
            assert status == 200
            stop.set()
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(main())

    def test_body_cut_off_mid_read_is_a_400(self, served_index):
        async def main():
            service = AsyncQueryService(served_index, batch_size=16)
            port, stop, task = await self._serve(service)
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                b"POST /query_batch HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"pa"
            )
            await writer.drain()
            writer.write_eof()  # half-close: the body never finishes
            status = int((await reader.readline()).split()[1])
            writer.close()
            await writer.wait_closed()
            assert status == 400
            stop.set()
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(main())

    def test_stalled_request_times_out_as_408(self, served_index, monkeypatch):
        import repro.serve.http as http_mod

        monkeypatch.setattr(http_mod, "_READ_TIMEOUT", 0.2)

        async def main():
            service = AsyncQueryService(served_index, batch_size=16)
            port, stop, task = await self._serve(service)
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"GET /query?s=0")  # never finish the request line
            await writer.drain()
            status = int((await asyncio.wait_for(reader.readline(), timeout=10)).split()[1])
            writer.close()
            await writer.wait_closed()
            assert status == 408
            stop.set()
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(main())

    def test_metrics_and_healthz_on_a_clean_service(self, served_index):
        async def main():
            service = AsyncQueryService(served_index, batch_size=16)
            port, stop, task = await self._serve(service)
            await _http_request(port, "GET", "/query?s=0&t=5")

            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"GET /metrics HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
            await writer.drain()
            status = int((await reader.readline()).split()[1])
            content_type = ""
            while True:
                header = (await reader.readline()).decode().strip()
                if not header:
                    break
                if header.lower().startswith("content-type:"):
                    content_type = header.partition(":")[2].strip()
            text = (await reader.read()).decode()
            writer.close()
            await writer.wait_closed()

            assert status == 200
            assert content_type.startswith("text/plain")
            for series in (
                "repro_queries_total",
                "repro_shed_total{cause=\"overload\"} 0",
                "repro_health 0",
                "repro_flush_latency_seconds_bucket",
                "repro_request_latency_seconds_count",
                "repro_http_responses_total{code=\"200\"}",
            ):
                assert series in text, series

            status, health = await _http_request(port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            stop.set()
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(main())


# ----------------------------------------------------------------------
# `python -m repro serve` end to end
# ----------------------------------------------------------------------
def test_cli_serve_end_to_end(tmp_path):
    """Build, serve with workers over HTTP, query, SIGTERM, no shm leak."""
    import urllib.request

    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    index_path = tmp_path / "fb.npz"
    graph = barabasi_albert(100, 3, seed=4)
    index = PSPCIndex.build(graph)
    index.save(index_path, compress=False)

    before = _segment_files()
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(index_path),
            "--workers", "1", "--port", "0",
        ],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        port = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:  # EOF: the server died before reporting a port
                break
            if "serving on" in line:
                port = int(line.rsplit(":", 1)[1].split()[0])
                break
        assert port is not None, "server never reported its port"
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/query?s=0&t=42", timeout=30
        ) as response:
            answer = json.loads(response.read())
        expected = index.query(0, 42)
        assert (answer["dist"], answer["count"]) == (expected.dist, expected.count)
    finally:
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
    assert _segment_files() == before


# ----------------------------------------------------------------------
# review regressions: stale-reply quarantine and count overflow
# ----------------------------------------------------------------------
def _overflow_store():
    """A tiny compact store whose query count exceeds int64.

    Stored counts fit int64 (2**40) but the query-time product is 2**80 —
    the regime where the kernels fall back to Python-int accumulation and
    the worker protocol must not truncate.
    """
    from repro.core.compact import CompactLabelIndex
    from repro.ordering.base import VertexOrder

    big = 2**40
    order = VertexOrder.from_order(np.array([2, 0, 1]), 3, strategy="custom")
    # ranks: v2 -> 0, v0 -> 1, v1 -> 2; labels sorted by hub rank
    indptr = np.array([0, 2, 4, 5], dtype=np.int64)
    hubs = np.array([0, 1, 0, 2, 0], dtype=np.int32)
    dists = np.array([1, 0, 1, 0, 0], dtype=np.int16)
    counts = np.array([big, 1, big, 1, 1], dtype=np.int64)
    weights = np.ones(3, dtype=np.int64)
    return CompactLabelIndex(order, indptr, hubs, dists, counts, weights)


def test_pool_preserves_counts_beyond_int64():
    store = _overflow_store()
    direct = store.query(0, 1)
    assert direct.count == 2**80  # the scenario is real
    with WorkerPool(store, workers=1) as pool:
        assert pool.query_batch([(0, 1), (1, 0), (2, 2)]) == store.query_batch(
            [(0, 1), (1, 0), (2, 2)]
        )
        assert pool.query(0, 1).count == 2**80


def test_failed_batch_never_leaks_stale_replies(served_index):
    """If one shard fails, other workers' replies must not poison batch N+1."""
    pairs_a = _random_pairs(served_index.n, 40, seed=1)
    pairs_b = _random_pairs(served_index.n, 60, seed=2)
    with WorkerPool(served_index, workers=2) as pool:
        original = pool._recv_shard
        state = {"fired": False}

        def failing_recv(slot, shard, trace_id=None):
            if not state["fired"]:
                state["fired"] = True
                raise ServeError("injected shard failure")
            return original(slot, shard, trace_id)

        pool._recv_shard = failing_recv
        with pytest.raises(ServeError, match="injected"):
            pool.query_batch(pairs_a)
        # the quarantine must have drained (or replaced) every worker that
        # still had a reply in flight: the next batch is answered correctly
        assert pool.query_batch(pairs_b) == served_index.query_batch(pairs_b)
        # replacements are observable, and distinct from the crash budget
        stats = pool.stats()
        assert stats["respawns"] == 0
        assert stats["quarantines"] >= 0  # drained promptly or replaced


def test_async_bad_submit_does_not_poison_cobatched_queries(served_index):
    """Validation happens before admission: one bad request fails alone."""

    async def main():
        async with AsyncQueryService(served_index, batch_size=50, max_wait=0.01) as svc:
            good = [svc.submit(s, t) for s, t in _random_pairs(served_index.n, 10)]
            with pytest.raises(QueryError, match="out of range"):
                await svc.submit(0, served_index.n + 5)
            with pytest.raises(QueryError, match="out of range"):
                await svc.query_batch([(0, 1), (-3, 2)])
            return await asyncio.gather(*good)

    results = asyncio.run(main())
    assert results == [served_index.query(r.s, r.t) for r in results]


def test_pool_bulk_chunks_scale_with_workers(served_index):
    """A pool-backed bulk sweep uses batch_size * workers per kernel call."""
    pairs = _random_pairs(served_index.n, 300)

    async def main():
        async with AsyncQueryService(
            served_index, workers=2, batch_size=64
        ) as service:
            results = await service.query_batch(pairs)
            return results, service.stats()

    results, stats = asyncio.run(main())
    assert results == served_index.query_batch(pairs)
    assert stats["bulk_flushes"] == 3  # ceil(300 / (64 * 2))


def test_pool_ragged_batch_raises_query_error(served_index):
    with WorkerPool(served_index, workers=1) as pool:
        with pytest.raises(QueryError, match="pairs"):
            pool.query_batch([(1, 2), (3,)])


def test_http_bad_batch_values_return_400(served_index):
    from repro.serve.http import serve

    async def main():
        service = AsyncQueryService(served_index, batch_size=16)
        ready: asyncio.Future = asyncio.get_running_loop().create_future()
        stop = asyncio.Event()
        task = asyncio.ensure_future(
            serve(service, "127.0.0.1", 0, ready=ready, stop=stop)
        )
        _, port = await asyncio.wait_for(ready, timeout=10)
        status, err = await _http_request(
            port, "POST", "/query_batch",
            json.dumps({"pairs": [["a", 2]]}).encode(),
        )
        assert status == 400 and "integer" in err["error"]
        stop.set()
        await asyncio.wait_for(task, timeout=10)

    asyncio.run(main())


def test_serve_surface_imports_lazily():
    """`import repro` must not pay for asyncio/multiprocessing serving code."""
    code = (
        "import sys, repro\n"
        "heavy = [m for m in ('repro.serve.http', 'repro.serve.pool',\n"
        "                     'repro.serve.async_service') if m in sys.modules]\n"
        "assert not heavy, heavy\n"
        "from repro import AsyncQueryService, WorkerPool, ShmIndexSegment\n"
        "assert AsyncQueryService.__name__ == 'AsyncQueryService'\n"
    )
    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr


def test_directed_compact_store_persists_and_opens(directed_index, tmp_path):
    """directed-compact rides the same pack_store/unpack_store schema as shm."""
    from repro.api import open_index

    compact = directed_index.labels  # compact is the default store
    assert isinstance(compact, CompactDirectedLabelIndex)
    path = tmp_path / "directed_compact.npz"
    compact.save(path, compress=False)
    loaded = CompactDirectedLabelIndex.load(path, mmap=True)
    assert loaded == compact
    assert isinstance(loaded.hubs_in, np.memmap)

    facade = open_index(path, mmap=True)
    assert isinstance(facade, DirectedSPCIndex)
    # the facade serves the packed arrays directly — no tuple thaw
    assert isinstance(facade.labels, CompactDirectedLabelIndex)
    pairs = _random_pairs(directed_index.n, 40)
    assert facade.query_batch(pairs) == directed_index.query_batch(pairs)
    assert facade.query(*pairs[0]) == directed_index.query(*pairs[0])
