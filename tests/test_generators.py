"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import generators as gen
from repro.graph.properties import is_connected


class TestErdosRenyi:
    def test_p_zero_is_empty(self):
        assert gen.erdos_renyi(20, 0.0, seed=1).m == 0

    def test_p_one_is_complete(self):
        g = gen.erdos_renyi(10, 1.0, seed=1)
        assert g.m == 45

    def test_deterministic_in_seed(self):
        assert gen.erdos_renyi(30, 0.2, seed=9) == gen.erdos_renyi(30, 0.2, seed=9)

    def test_different_seeds_differ(self):
        assert gen.erdos_renyi(30, 0.2, seed=1) != gen.erdos_renyi(30, 0.2, seed=2)

    def test_invalid_probability(self):
        with pytest.raises(GraphError):
            gen.erdos_renyi(10, 1.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        n, m = 100, 3
        g = gen.barabasi_albert(n, m, seed=0)
        # clique on m+1 vertices + m edges per newcomer
        assert g.m == m * (m + 1) // 2 + (n - m - 1) * m

    def test_connected(self):
        assert is_connected(gen.barabasi_albert(200, 2, seed=3))

    def test_heavy_tail(self):
        g = gen.barabasi_albert(500, 3, seed=1)
        degrees = g.degrees()
        assert int(degrees.max()) > 5 * int(np.median(degrees))

    def test_deterministic(self):
        assert gen.barabasi_albert(50, 2, seed=4) == gen.barabasi_albert(50, 2, seed=4)

    def test_bad_parameters(self):
        with pytest.raises(GraphError):
            gen.barabasi_albert(5, 0)
        with pytest.raises(GraphError):
            gen.barabasi_albert(3, 4)


class TestWattsStrogatz:
    def test_no_rewiring_is_lattice(self):
        g = gen.watts_strogatz(20, 4, 0.0, seed=0)
        assert g.m == 40
        assert all(g.degree(v) == 4 for v in range(20))

    def test_rewiring_preserves_edge_count(self):
        g = gen.watts_strogatz(60, 6, 0.3, seed=2)
        assert g.m == 180

    def test_odd_k_rejected(self):
        with pytest.raises(GraphError):
            gen.watts_strogatz(10, 3, 0.1)

    def test_n_must_exceed_k(self):
        with pytest.raises(GraphError):
            gen.watts_strogatz(4, 4, 0.1)


class TestPowerlawCluster:
    def test_edge_count_matches_ba(self):
        g = gen.powerlaw_cluster(80, 3, 0.5, seed=1)
        assert g.m == 3 * 4 // 2 + (80 - 4) * 3

    def test_triangle_probability_validated(self):
        with pytest.raises(GraphError):
            gen.powerlaw_cluster(10, 2, 1.5)

    def test_clustering_exceeds_plain_ba(self):
        # Holme-Kim at p=1 should close many more triangles than BA.
        def triangles(g):
            total = 0
            for u in range(g.n):
                nbrs = set(int(x) for x in g.neighbors(u))
                for v in nbrs:
                    if v > u:
                        total += len(nbrs & set(int(x) for x in g.neighbors(v)))
            return total

        hk = gen.powerlaw_cluster(300, 3, 1.0, seed=7)
        ba = gen.barabasi_albert(300, 3, seed=7)
        assert triangles(hk) > triangles(ba)


class TestGridRoadNetwork:
    def test_grid_shape(self):
        g = gen.grid_road_network(4, 5)
        assert g.n == 20
        assert g.m == 4 * 4 + 3 * 5  # horizontal + vertical edges

    def test_shortcuts_add_edges(self):
        base = gen.grid_road_network(6, 6)
        extra = gen.grid_road_network(6, 6, extra_edges=10, seed=1)
        assert extra.m > base.m

    def test_degree_bounded(self):
        g = gen.grid_road_network(10, 10)
        assert int(g.degrees().max()) <= 4

    def test_invalid_dimensions(self):
        with pytest.raises(GraphError):
            gen.grid_road_network(0, 5)


class TestSmallGenerators:
    def test_random_tree_is_tree(self):
        g = gen.random_tree(50, seed=2)
        assert g.m == 49
        assert is_connected(g)

    def test_caveman_structure(self):
        g = gen.caveman(4, 5)
        assert g.n == 20
        assert g.m == 4 * 10 + 4  # four K5s plus the ring

    def test_caveman_validation(self):
        with pytest.raises(GraphError):
            gen.caveman(0, 3)

    def test_complete_graph(self):
        assert gen.complete_graph(6).m == 15

    def test_star_graph(self):
        g = gen.star_graph(5)
        assert g.n == 6
        assert g.degree(0) == 5

    def test_path_graph(self):
        g = gen.path_graph(5)
        assert g.m == 4
        assert g.degree(0) == 1

    def test_cycle_graph(self):
        g = gen.cycle_graph(5)
        assert g.m == 5
        assert all(g.degree(v) == 2 for v in range(5))

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            gen.cycle_graph(2)
