"""Unit tests for graph statistics (components, diameter, Table III stats)."""

from __future__ import annotations

import numpy as np

from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    path_graph,
)
from repro.graph.graph import Graph
from repro.graph.properties import (
    connected_components,
    diameter_double_sweep,
    diameter_exact,
    graph_stats,
    is_connected,
    largest_component,
)


class TestComponents:
    def test_single_component(self, triangle):
        assert int(connected_components(triangle).max()) == 0

    def test_two_components(self, two_components):
        comp = connected_components(two_components)
        assert comp[0] == comp[1] == comp[2]
        assert comp[3] == comp[4]
        assert comp[0] != comp[3]

    def test_isolated_vertices_each_own_component(self):
        comp = connected_components(Graph(3, []))
        assert len(set(int(c) for c in comp)) == 3

    def test_largest_component_extraction(self, two_components):
        sub, old_of_new = largest_component(two_components)
        assert sub.n == 3
        assert sorted(int(v) for v in old_of_new) == [0, 1, 2]

    def test_largest_component_of_empty_graph(self):
        sub, mapping = largest_component(Graph(0, []))
        assert sub.n == 0
        assert len(mapping) == 0

    def test_is_connected(self, triangle, two_components):
        assert is_connected(triangle)
        assert not is_connected(two_components)
        assert is_connected(Graph(1, []))
        assert is_connected(Graph(0, []))


class TestDiameter:
    def test_path_graph_exact(self):
        assert diameter_exact(path_graph(7)) == 6

    def test_cycle_exact(self):
        assert diameter_exact(cycle_graph(10)) == 5

    def test_complete_graph(self):
        assert diameter_exact(complete_graph(5)) == 1

    def test_double_sweep_is_lower_bound(self):
        g = barabasi_albert(120, 2, seed=8)
        assert diameter_double_sweep(g) <= diameter_exact(g)

    def test_double_sweep_exact_on_path(self):
        # double sweep is exact on trees
        assert diameter_double_sweep(path_graph(9)) == 8

    def test_disconnected_graph_uses_finite_distances(self, two_components):
        assert diameter_exact(two_components) == 2


class TestGraphStats:
    def test_fields(self, diamond):
        stats = graph_stats(diamond, name="diamond")
        assert stats.name == "diamond"
        assert stats.n == 4
        assert stats.m == 4
        assert stats.avg_degree == 2.0
        assert stats.max_degree == 2
        assert stats.components == 1

    def test_as_row_shape(self, diamond):
        row = graph_stats(diamond, name="d").as_row()
        assert row[0] == "d"
        assert row[1] == 4

    def test_empty_graph_stats(self):
        stats = graph_stats(Graph(0, []))
        assert stats.n == 0
        assert stats.max_degree == 0
        assert stats.components == 0
