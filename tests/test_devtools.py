"""Suite for ``reprolint`` — the project-invariant static analyser.

Three layers:

* a fixture corpus per rule (violating / clean / suppressed-with-reason
  snippets linted through :func:`lint_source` under virtual paths, so a
  snippet can impersonate ``src/repro/serve/pool.py``), asserting exact
  rule id and line;
* the suppression protocol itself (reason mandatory, unknown ids rejected,
  standalone comment lines target the next line);
* the self-gate: the repository's own tree must lint clean under
  ``--strict``, every gated public module must be fully annotated, and —
  when mypy happens to be installed (the ``[dev]`` extra; CI always has
  it) — ``mypy --config-file mypy.ini`` must pass.
"""

from __future__ import annotations

import ast
import csv
import io
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.devtools import (
    ALL_RULES,
    Finding,
    Severity,
    format_findings,
    lint_paths,
    lint_source,
    rules_by_id,
)
from repro.devtools.cli import main as reprolint_main
from repro.errors import LintError

REPO = Path(__file__).resolve().parent.parent


def lint(source: str, path: str):
    """Dedent + lint a snippet as though it lived at ``path``."""
    return lint_source(textwrap.dedent(source), path)


def hits(source: str, path: str, rule: str) -> list[Finding]:
    """Unsuppressed findings of one rule, sorted by line."""
    report = lint(source, path)
    return [f for f in report.findings if f.rule == rule]


def lines_of(source: str, path: str, rule: str) -> list[int]:
    return [f.line for f in hits(source, path, rule)]


# ----------------------------------------------------------------------
# R001 — shm blocks released on all paths
# ----------------------------------------------------------------------
class TestShmReleaseRule:
    def test_discarded_acquisition_flagged(self):
        src = """\
        def leak(index):
            ShmIndexSegment.publish(index)
        """
        assert lines_of(src, "src/repro/x.py", "R001") == [2]

    def test_fall_through_close_flagged(self):
        src = """\
        def leak(index):
            segment = ShmIndexSegment.publish(index)
            do_work(segment.manifest)
            segment.close()
        """
        findings = hits(src, "src/repro/x.py", "R001")
        assert [f.line for f in findings] == [2]
        assert "fall-through" in findings[0].message

    def test_never_released_flagged(self):
        src = """\
        def leak(index):
            segment = ShmIndexSegment.publish(index)
            return segment.manifest
        """
        findings = hits(src, "src/repro/x.py", "R001")
        assert [f.line for f in findings] == [2]
        assert "never released" in findings[0].message

    def test_with_block_clean(self):
        src = """\
        def ok(index):
            with ShmIndexSegment.publish(index) as segment:
                return use(segment.manifest)
        """
        assert hits(src, "src/repro/x.py", "R001") == []

    def test_try_finally_clean(self):
        src = """\
        def ok(index):
            segment = ShmIndexSegment.publish(index)
            try:
                return use(segment)
            finally:
                segment.close()
        """
        assert hits(src, "src/repro/x.py", "R001") == []

    def test_atexit_handoff_clean(self):
        src = """\
        def ok(manifest):
            block = ShmArrayBlock.attach(manifest)
            atexit.register(block.close)
            return compute(block)
        """
        assert hits(src, "src/repro/x.py", "R001") == []

    def test_escape_via_attribute_clean(self):
        src = """\
        def ok(self, index):
            segment = ShmIndexSegment.publish(index)
            self._segment = segment
        """
        assert hits(src, "src/repro/x.py", "R001") == []

    def test_returned_handle_clean(self):
        src = """\
        def ok(index):
            segment = ShmIndexSegment.publish(index)
            return segment
        """
        assert hits(src, "src/repro/x.py", "R001") == []

    def test_manifest_argument_is_not_a_handoff(self):
        # passing derived data (segment.manifest) must NOT count as a release
        src = """\
        def leak(index):
            segment = ShmIndexSegment.publish(index)
            spawn_worker(segment.manifest)
        """
        assert lines_of(src, "src/repro/x.py", "R001") == [2]

    def test_suppressed_with_reason(self):
        src = """\
        def lifecycle_test(index):
            # reprolint: disable=R001 (manual lifecycle is the subject under test)
            segment = ShmIndexSegment.publish(index)
            segment.close()
        """
        report = lint(src, "tests/test_x.py")
        assert [f.rule for f in report.findings] == []
        assert [f.rule for f in report.suppressed] == ["R001"]
        assert report.suppressed[0].suppression_reason == (
            "manual lifecycle is the subject under test"
        )


# ----------------------------------------------------------------------
# R002 — the serve pipe hot path stays pickle-free
# ----------------------------------------------------------------------
class TestPipePurityRule:
    POOL = "src/repro/serve/pool.py"

    def test_pickle_import_flagged(self):
        assert lines_of("import pickle\n", self.POOL, "R002") == [1]

    def test_pickle_from_import_flagged(self):
        assert lines_of("from pickle import dumps\n", self.POOL, "R002") == [1]

    def test_pickle_call_flagged(self):
        src = """\
        def send(conn, payload):
            conn.send_bytes(pickle.dumps(payload))
        """
        assert lines_of(src, self.POOL, "R002") == [2]

    def test_object_dtype_flagged(self):
        src = """\
        def pack(rows):
            return np.array(rows, dtype=object)
        """
        assert lines_of(src, self.POOL, "R002") == [2]

    def test_object_dtype_string_flagged(self):
        src = 'payload = np.empty(4, dtype="O")\n'
        assert lines_of(src, self.POOL, "R002") == [1]

    def test_int64_payload_clean(self):
        src = """\
        def pack(pairs):
            return np.asarray(pairs, dtype=np.int64)
        """
        assert hits(src, self.POOL, "R002") == []

    def test_rule_is_scoped_to_pool(self):
        assert hits("import pickle\n", "src/repro/core/store.py", "R002") == []


# ----------------------------------------------------------------------
# R003 — hot-path numpy allocations carry explicit dtypes
# ----------------------------------------------------------------------
class TestExplicitDtypeRule:
    KERNEL = "src/repro/core/fastbuild.py"

    def test_bare_zeros_flagged(self):
        assert lines_of("counts = np.zeros(n)\n", self.KERNEL, "R003") == [1]

    def test_bare_array_flagged(self):
        assert lines_of("hubs = np.array(rows)\n", self.KERNEL, "R003") == [1]

    def test_keyword_dtype_clean(self):
        src = "counts = np.zeros(n, dtype=np.int64)\n"
        assert hits(src, self.KERNEL, "R003") == []

    def test_positional_dtype_clean(self):
        assert hits("counts = np.zeros(n, np.int64)\n", self.KERNEL, "R003") == []
        assert hits("a = np.full(n, 0, np.int64)\n", self.KERNEL, "R003") == []

    def test_full_needs_third_argument(self):
        assert lines_of("a = np.full(n, 0)\n", self.KERNEL, "R003") == [1]

    def test_scoped_to_kernel_and_store_files(self):
        for path in (
            "src/repro/core/procbuild.py",
            "src/repro/digraph/fastbuild.py",
            "src/repro/core/store.py",
            "src/repro/core/compact.py",
        ):
            assert lines_of("x = np.empty(3)\n", path, "R003") == [1]
        assert hits("x = np.empty(3)\n", "src/repro/graph/graph.py", "R003") == []

    def test_suppressed_with_reason(self):
        src = (
            "x = np.array(json.dumps(h))"
            "  # reprolint: disable=R003 (unicode scalar, width is data-dependent)\n"
        )
        report = lint(src, self.KERNEL)
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["R003"]


# ----------------------------------------------------------------------
# R004 — deterministic timing and RNG in tests/benchmarks
# ----------------------------------------------------------------------
class TestDeterministicTestRule:
    def test_time_time_flagged_as_warning(self):
        findings = hits("start = time.time()\n", "tests/test_x.py", "R004")
        assert [f.line for f in findings] == [1]
        assert findings[0].severity is Severity.WARNING

    def test_unseeded_default_rng_flagged(self):
        src = "rng = np.random.default_rng()\n"
        assert lines_of(src, "benchmarks/bench_x.py", "R004") == [1]

    def test_global_numpy_draw_flagged(self):
        src = "pairs = np.random.randint(0, 9, size=8)\n"
        assert lines_of(src, "tests/test_x.py", "R004") == [1]

    def test_global_random_draw_flagged(self):
        assert lines_of("x = random.uniform(0, 1)\n", "tests/test_x.py", "R004") == [1]

    def test_seeded_rng_and_perf_counter_clean(self):
        src = """\
        rng = np.random.default_rng(17)
        local = random.Random(3)
        start = time.perf_counter()
        """
        assert hits(src, "tests/test_x.py", "R004") == []

    def test_library_code_out_of_scope(self):
        assert hits("start = time.time()\n", "src/repro/api.py", "R004") == []


# ----------------------------------------------------------------------
# R005 — the asyncio serving twin never blocks the loop
# ----------------------------------------------------------------------
class TestAsyncNoBlockRule:
    HTTP = "src/repro/serve/http.py"

    def test_time_sleep_in_async_def_flagged(self):
        src = """\
        async def handler(request):
            time.sleep(0.1)
        """
        findings = hits(src, self.HTTP, "R005")
        assert [f.line for f in findings] == [2]
        assert "asyncio.sleep" in findings[0].message

    def test_unawaited_kernel_call_flagged(self):
        src = """\
        async def handler(service, pairs):
            return service.query_batch(pairs)
        """
        findings = hits(src, "src/repro/serve/async_service.py", "R005")
        assert [f.line for f in findings] == [2]
        assert "run_in_executor" in findings[0].message

    def test_awaited_kernel_call_clean(self):
        src = """\
        async def handler(service, pairs):
            return await service.query_batch(pairs)
        """
        assert hits(src, "src/repro/serve/async_service.py", "R005") == []

    def test_executor_dispatch_clean(self):
        src = """\
        async def handler(loop, pool, shard):
            return await loop.run_in_executor(None, pool.dispatch, shard)
        """
        assert hits(src, self.HTTP, "R005") == []

    def test_sync_def_out_of_scope(self):
        src = """\
        def warmup():
            time.sleep(0.1)
        """
        assert hits(src, self.HTTP, "R005") == []

    def test_nested_sync_def_not_attributed_to_coroutine(self):
        src = """\
        async def handler(loop):
            def blocking_work():
                time.sleep(0.1)
            return await loop.run_in_executor(None, blocking_work)
        """
        assert hits(src, self.HTTP, "R005") == []

    def test_other_modules_out_of_scope(self):
        src = """\
        async def helper():
            time.sleep(0.1)
        """
        assert hits(src, "src/repro/experiments/harness.py", "R005") == []


# ----------------------------------------------------------------------
# R006 — no bare except; raised project errors derive from repro.errors
# ----------------------------------------------------------------------
class TestTypedErrorsRule:
    def test_bare_except_flagged_everywhere(self):
        src = """\
        try:
            risky()
        except:
            pass
        """
        assert lines_of(src, "tests/test_x.py", "R006") == [3]
        assert lines_of(src, "src/repro/x.py", "R006") == [3]

    def test_builtin_raise_in_library_flagged(self):
        src = """\
        def parse(value):
            raise ValueError("bad " + value)
        """
        findings = hits(src, "src/repro/x.py", "R006")
        assert [f.line for f in findings] == [2]
        assert "repro.errors" in findings[0].message

    def test_builtin_raise_in_tests_allowed(self):
        src = """\
        def boom():
            raise RuntimeError("test scaffolding may raise anything")
        """
        assert hits(src, "tests/test_x.py", "R006") == []

    def test_repro_error_and_derived_class_clean(self):
        src = """\
        from repro.errors import ServeError

        class _HttpError(ServeError):
            pass

        def fail():
            raise _HttpError("mapped")

        def fail2():
            raise ServeError("typed")
        """
        assert hits(src, "src/repro/serve/x.py", "R006") == []

    def test_transitive_derivation_clean(self):
        src = """\
        from repro.errors import ReproError

        class Base(ReproError):
            pass

        class Leaf(Base):
            pass

        def fail():
            raise Leaf("still typed")
        """
        assert hits(src, "src/repro/x.py", "R006") == []

    def test_notimplemented_and_assertion_allowed(self):
        src = """\
        def abstract():
            raise NotImplementedError

        def invariant():
            raise AssertionError("self-check")
        """
        assert hits(src, "src/repro/x.py", "R006") == []

    def test_reraise_of_caught_variable_clean(self):
        src = """\
        def passthrough():
            try:
                risky()
            except Exception as exc:
                raise
        """
        assert hits(src, "src/repro/x.py", "R006") == []


# ----------------------------------------------------------------------
# R007 — spawn targets must be module-level callables
# ----------------------------------------------------------------------
class TestSpawnPicklableRule:
    def test_lambda_target_flagged(self):
        src = "p = multiprocessing.Process(target=lambda: work())\n"
        findings = hits(src, "src/repro/x.py", "R007")
        assert [f.line for f in findings] == [1]
        assert "lambda" in findings[0].message

    def test_nested_function_target_flagged(self):
        src = """\
        def launch(ctx):
            def child():
                work()
            return ctx.Process(target=child)
        """
        findings = hits(src, "src/repro/x.py", "R007")
        assert [f.line for f in findings] == [4]
        assert "nested" in findings[0].message

    def test_bound_method_target_flagged(self):
        src = """\
        class Pool:
            def launch(self):
                return multiprocessing.Process(target=self._serve)
        """
        findings = hits(src, "src/repro/x.py", "R007")
        assert [f.line for f in findings] == [3]
        assert "bound method" in findings[0].message

    def test_module_level_target_clean(self):
        src = """\
        def _worker_main(conn):
            serve(conn)

        def launch(ctx):
            return ctx.Process(target=_worker_main, args=(None,))
        """
        assert hits(src, "src/repro/x.py", "R007") == []

    def test_module_level_function_passed_inside_method_clean(self):
        src = """\
        def _worker_main(conn):
            serve(conn)

        class Pool:
            def launch(self):
                return self._ctx.Process(target=_worker_main)
        """
        assert hits(src, "src/repro/x.py", "R007") == []


# ----------------------------------------------------------------------
# R008 — monotonic clocks and no print() in library code
# ----------------------------------------------------------------------
class TestMonotonicNoPrintRule:
    def test_wall_clock_call_flagged(self):
        src = """\
        def timed(fn):
            start = time.time()
            fn()
            return time.time() - start
        """
        assert lines_of(src, "src/repro/serve/pool.py", "R008") == [2, 4]

    def test_print_in_library_code_flagged(self):
        src = "print('loaded', n, 'labels')\n"
        assert lines_of(src, "src/repro/core/index.py", "R008") == [1]

    def test_perf_counter_and_utc_datetime_clean(self):
        src = """\
        def timed(fn):
            start = time.perf_counter()
            fn()
            stamp = datetime.now(timezone.utc)
            return time.perf_counter() - start, stamp
        """
        assert hits(src, "src/repro/serve/pool.py", "R008") == []

    def test_print_allowed_in_cli_and_devtools(self):
        assert hits("print('done')\n", "src/repro/cli.py", "R008") == []
        assert hits("print('done')\n", "src/repro/devtools/cli.py", "R008") == []
        assert hits("print('done')\n", "src/repro/devtools/fmt.py", "R008") == []

    def test_outside_src_not_checked(self):
        assert hits("t = time.time()\n", "tests/test_x.py", "R008") == []
        assert hits("print('x')\n", "benchmarks/bench.py", "R008") == []

    def test_suppression_with_reason_honoured(self):
        src = (
            "stamp = time.time()  # reprolint: "
            "disable=R008 (epoch seconds are the wire format here)\n"
        )
        report = lint(src, "src/repro/serve/http.py")
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["R008"]


# ----------------------------------------------------------------------
# R009 — shard fleet manifests flow through the canonical helpers
# ----------------------------------------------------------------------
class TestFleetManifestRule:
    def test_hardcoded_fleet_tag_flagged(self):
        src = """\
        def sniff(manifest):
            return manifest.get("format") == "repro-fleet"
        """
        findings = hits(src, "src/repro/serve/pool.py", "R009")
        assert [f.line for f in findings] == [2]
        assert "is_fleet_manifest" in findings[0].message

    def test_fleet_tag_allowed_in_store(self):
        src = """\
        FLEET_FORMAT_NAME = "repro-fleet"
        """
        assert hits(src, "src/repro/core/store.py", "R009") == []

    def test_adhoc_fleet_manifest_dict_flagged(self):
        src = """\
        def hand_rolled(bounds, shards):
            return {"format": "x", "version": 1, "bounds": bounds, "shards": shards}
        """
        findings = hits(src, "src/repro/serve/pool.py", "R009")
        assert [f.line for f in findings] == [2]
        assert "build_fleet_manifest" in findings[0].message

    def test_adhoc_segment_manifest_dict_flagged(self):
        src = """\
        def hand_rolled(shm):
            return {"format": "seg", "shm_name": shm.name}
        """
        assert lines_of(src, "src/repro/serve/pool.py", "R009") == [2]

    def test_segment_manifest_allowed_in_shm(self):
        src = """\
        def publish_manifest(shm):
            return {"format": "seg", "shm_name": shm.name}
        """
        assert hits(src, "src/repro/serve/shm.py", "R009") == []

    def test_dict_call_augmentation_clean(self):
        src = """\
        def worker_manifest(manifest, owned):
            return dict(manifest, hot=list(owned))
        """
        assert hits(src, "src/repro/serve/pool.py", "R009") == []

    def test_unrelated_format_dict_clean(self):
        src = """\
        def csv_options():
            return {"format": "csv", "delimiter": ","}
        """
        assert hits(src, "src/repro/cli.py", "R009") == []

    def test_tests_and_devtools_out_of_scope(self):
        src = """\
        manifest = {"format": "repro-fleet", "bounds": [0, 5], "shards": []}
        """
        assert hits(src, "tests/test_shard.py", "R009") == []
        assert hits(src, "src/repro/devtools/fixtures.py", "R009") == []

    def test_suppression_with_reason_honoured(self):
        src = (
            'tag = "repro-fleet"  # reprolint: '
            "disable=R009 (docs example renders the literal tag)\n"
        )
        report = lint(src, "src/repro/serve/router.py")
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["R009"]


# ----------------------------------------------------------------------
# the suppression protocol (R000)
# ----------------------------------------------------------------------
class TestSuppressionProtocol:
    def test_reason_is_mandatory(self):
        # built by concatenation so this test file itself does not carry a
        # reasonless suppression when the repo lints its own tree
        src = "x = np.zeros(n)  # reprolint: " + "disable=R003\n"
        report = lint(src, "src/repro/core/fastbuild.py")
        rules = sorted(f.rule for f in report.findings)
        # the disable without a reason does not suppress: both the R000
        # protocol finding and the original R003 finding surface
        assert rules == ["R000", "R003"]
        assert report.suppressed == []

    def test_unknown_rule_id_rejected(self):
        src = "x = 1  # reprolint: " + "disable=R999 (whatever)\n"
        report = lint(src, "src/repro/x.py")
        assert [f.rule for f in report.findings] == ["R000"]
        assert "unknown rule id" in report.findings[0].message

    def test_standalone_comment_suppresses_next_line(self):
        src = """\
        # reprolint: disable=R003 (width is data-dependent here)
        x = np.zeros(n)
        """
        report = lint(src, "src/repro/core/fastbuild.py")
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["R003"]

    def test_suppression_is_rule_specific(self):
        src = "x = np.zeros(n)  # reprolint: disable=R001 (wrong rule)\n"
        report = lint(src, "src/repro/core/fastbuild.py")
        assert [f.rule for f in report.findings] == ["R003"]

    def test_multiple_ids_one_comment(self):
        src = (
            "start = time.time()"
            "  # reprolint: disable=R004,R006 (measuring wall-clock drift itself)\n"
        )
        report = lint(src, "tests/test_x.py")
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["R004"]

    def test_syntax_error_reported_as_r000(self):
        report = lint_source("def broken(:\n", "src/repro/x.py")
        assert [f.rule for f in report.findings] == ["R000"]
        assert "does not parse" in report.findings[0].message


# ----------------------------------------------------------------------
# output formats and the CLI front-end
# ----------------------------------------------------------------------
class TestFormatterAndCli:
    FINDINGS = [
        Finding(rule="R003", path="src/a.py", line=4, message="no dtype"),
        Finding(
            rule="R004",
            path="tests/b.py",
            line=9,
            message="time.time()",
            severity=Severity.WARNING,
        ),
    ]

    def test_table_format(self):
        text = format_findings(self.FINDINGS)
        lines = text.splitlines()
        assert lines[0] == "reprolint findings"
        assert "file" in lines[1] and "rule" in lines[1]
        assert "src/a.py" in lines[3] and "R003" in lines[3]

    def test_table_clean(self):
        assert format_findings([]) == "reprolint findings: clean"

    def test_csv_format(self):
        rows = list(csv.reader(io.StringIO(format_findings(self.FINDINGS, fmt="csv"))))
        assert rows[0] == ["file", "line", "rule", "severity", "message"]
        assert rows[1][:3] == ["src/a.py", "4", "R003"]

    def test_json_format(self):
        rows = json.loads(format_findings(self.FINDINGS, fmt="json"))
        assert rows[0]["rule"] == "R003"
        assert rows[1]["severity"] == "warning"

    def test_unknown_format_raises_lint_error(self):
        with pytest.raises(LintError):
            format_findings(self.FINDINGS, fmt="yaml")

    def test_warning_gates_only_under_strict(self, tmp_path):
        target = tmp_path / "tests" / "test_w.py"
        target.parent.mkdir()
        target.write_text("start = time.time()\n")
        assert reprolint_main([str(target)]) == 0
        assert reprolint_main([str(target), "--strict"]) == 1

    def test_missing_path_exits_2(self, tmp_path):
        assert reprolint_main([str(tmp_path / "nope")]) == 2

    def test_unknown_rule_subset_exits_2(self, tmp_path):
        (tmp_path / "x.py").write_text("x = 1\n")
        assert reprolint_main([str(tmp_path / "x.py"), "--rules", "R999"]) == 2

    def test_rule_subset_runs_only_those_rules(self, tmp_path):
        target = tmp_path / "tests" / "test_w.py"
        target.parent.mkdir()
        target.write_text("start = time.time()\n")
        assert reprolint_main([str(target), "--rules", "R001", "--strict"]) == 0

    def test_repro_lint_subcommand_wired(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["lint", "--strict", "somewhere"])
        assert args.command == "lint"
        assert args.strict is True
        assert args.paths == ["somewhere"]


# ----------------------------------------------------------------------
# the self-gate: this repository must hold its own invariants
# ----------------------------------------------------------------------
class TestRepositoryIsClean:
    def test_whole_tree_lints_clean_under_strict(self):
        report = lint_paths(
            [str(REPO / "src"), str(REPO / "tests"), str(REPO / "benchmarks")]
        )
        assert report.findings == [], "\n".join(str(f) for f in report.findings)
        # every suppression that fired carries its mandatory reason
        assert all(f.suppression_reason for f in report.suppressed)

    def test_rule_ids_are_unique_and_documented(self):
        registry = rules_by_id()
        assert len(registry) == len(ALL_RULES) == 9
        assert sorted(registry) == [f"R00{i}" for i in range(1, 10)]
        for rule in ALL_RULES:
            assert rule.title, rule.rule_id
            assert (rule.__doc__ or "").strip(), rule.rule_id

    def test_gated_public_surface_is_fully_annotated(self):
        """Local stand-in for mypy's disallow_untyped_defs (CI runs mypy)."""
        targets = [REPO / "src/repro/api.py", REPO / "src/repro/errors.py",
                   REPO / "src/repro/core/store.py"]
        targets += sorted((REPO / "src/repro/serve").glob("*.py"))
        targets += sorted((REPO / "src/repro/devtools").glob("*.py"))
        problems = []
        for target in targets:
            tree = ast.parse(target.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                args = node.args
                named = args.posonlyargs + args.args + args.kwonlyargs
                if named and named[0].arg in ("self", "cls"):
                    named = named[1:]
                named += [a for a in (args.vararg, args.kwarg) if a is not None]
                for arg in named:
                    if arg.annotation is None:
                        problems.append(
                            f"{target.name}:{node.lineno} {node.name}(... {arg.arg})"
                        )
                if node.returns is None and node.name != "__init__":
                    problems.append(f"{target.name}:{node.lineno} {node.name}() -> ?")
        assert problems == [], "\n".join(problems)

    def test_mypy_passes_when_available(self):
        pytest.importorskip("mypy")
        result = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", str(REPO / "mypy.ini")],
            cwd=REPO,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stdout + result.stderr
