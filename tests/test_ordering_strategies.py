"""Unit tests for the four ordering strategies of Section III-G."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OrderingError
from repro.graph.generators import (
    complete_graph,
    grid_road_network,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.ordering.degree import degree_order
from repro.ordering.hybrid import hybrid_order
from repro.ordering.significant_path import significant_path_order
from repro.ordering.tree_decomposition import mde_elimination, tree_decomposition_order


class TestDegreeOrder:
    def test_star_center_first(self):
        vo = degree_order(star_graph(5))
        assert int(vo.order[0]) == 0

    def test_descending_degree(self, social_graph):
        vo = degree_order(social_graph)
        degrees = social_graph.degrees()
        ordered = degrees[vo.order]
        assert all(ordered[i] >= ordered[i + 1] for i in range(len(ordered) - 1))

    def test_id_tie_break(self):
        vo = degree_order(complete_graph(4))
        assert list(vo.order) == [0, 1, 2, 3]

    def test_deterministic(self, social_graph):
        assert np.array_equal(degree_order(social_graph).order, degree_order(social_graph).order)


class TestSignificantPathOrder:
    def test_is_permutation(self, social_graph):
        vo = significant_path_order(social_graph)
        assert sorted(int(v) for v in vo.order) == list(range(social_graph.n))

    def test_starts_with_max_degree(self, social_graph):
        vo = significant_path_order(social_graph)
        degrees = social_graph.degrees()
        assert int(degrees[vo.order[0]]) == int(degrees.max())

    def test_handles_disconnected_graph(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        vo = significant_path_order(g)
        assert sorted(int(v) for v in vo.order) == list(range(6))

    def test_handles_isolated_vertices(self):
        g = Graph(4, [(0, 1)])
        vo = significant_path_order(g)
        assert sorted(int(v) for v in vo.order) == [0, 1, 2, 3]

    def test_path_graph_prefers_interior(self):
        # on a path, the second hub should be an interior vertex of the
        # significant path, not an endpoint
        vo = significant_path_order(path_graph(9))
        assert int(vo.order[0]) not in (0, 8)


class TestTreeDecompositionOrder:
    def test_elimination_covers_all_vertices(self, road_graph):
        seq, width = mde_elimination(road_graph)
        assert sorted(seq) == list(range(road_graph.n))
        assert width >= 1

    def test_path_graph_width_one(self):
        _, width = mde_elimination(path_graph(10))
        assert width == 1

    def test_grid_width_at_least_rows(self):
        _, width = mde_elimination(grid_road_network(4, 12))
        assert width >= 3  # grid treewidth = min(rows, cols)

    def test_order_reverses_elimination(self, road_graph):
        seq, _ = mde_elimination(road_graph)
        vo = tree_decomposition_order(road_graph)
        assert list(vo.order) == seq[::-1]

    def test_star_center_ranked_near_top(self):
        # the centre survives until the final degree-1 tie, so it lands in
        # the top two ranks; every other leaf is eliminated before it
        vo = tree_decomposition_order(star_graph(6))
        assert int(vo.rank[0]) <= 1


class TestHybridOrder:
    def test_negative_delta_rejected(self, social_graph):
        with pytest.raises(OrderingError):
            hybrid_order(social_graph, delta=-1)

    def test_core_ranked_above_fringe(self, social_graph):
        delta = 5
        vo = hybrid_order(social_graph, delta=delta)
        degrees = social_graph.degrees()
        n_core = int((degrees > delta).sum())
        assert all(int(degrees[v]) > delta for v in vo.order[:n_core])
        assert all(int(degrees[v]) <= delta for v in vo.order[n_core:])

    def test_delta_zero_keeps_connected_vertices_in_core(self):
        g = Graph(4, [(0, 1), (1, 2)])
        vo = hybrid_order(g, delta=0)
        degrees = g.degrees()
        assert all(int(degrees[v]) > 0 for v in vo.order[:3])
        assert int(vo.order[3]) == 3  # the isolated vertex lands in the fringe

    def test_huge_delta_degenerates_to_tree_decomposition(self, road_graph):
        vo = hybrid_order(road_graph, delta=10_000)
        td = tree_decomposition_order(road_graph)
        assert list(vo.order) == list(td.order)

    def test_strategy_records_delta(self, social_graph):
        assert "delta=7" in hybrid_order(social_graph, delta=7).strategy
