"""Integration tests: the full reduction pipeline vs the unreduced index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.index import PSPCIndex
from repro.graph.generators import barabasi_albert, caveman, random_tree, star_graph
from repro.graph.graph import Graph
from repro.graph.traversal import spc_pair
from repro.reduction.pipeline import ReducedSPCIndex


def check_pairs(graph: Graph, reduced: ReducedSPCIndex, pairs) -> None:
    for s, t in pairs:
        got = reduced.query(s, t)
        assert (got.dist, got.count) == spc_pair(graph, s, t), (s, t)


class TestPipeline:
    def test_full_pipeline_exact_on_social_graph(self, social_graph):
        reduced = ReducedSPCIndex.build(social_graph)
        rng = np.random.default_rng(0)
        pairs = [(int(s), int(t)) for s, t in rng.integers(social_graph.n, size=(150, 2))]
        check_pairs(social_graph, reduced, pairs)

    def test_matches_unreduced_index(self, social_graph):
        reduced = ReducedSPCIndex.build(social_graph)
        plain = PSPCIndex.build(social_graph)
        rng = np.random.default_rng(1)
        for s, t in rng.integers(social_graph.n, size=(100, 2)):
            assert reduced.query(int(s), int(t)).count == plain.query(int(s), int(t)).count

    def test_stages_can_be_disabled(self, social_graph):
        only_shell = ReducedSPCIndex.build(social_graph, use_equivalence=False)
        only_equiv = ReducedSPCIndex.build(social_graph, use_one_shell=False)
        neither = ReducedSPCIndex.build(
            social_graph, use_one_shell=False, use_equivalence=False
        )
        assert only_shell.removed_by_equivalence == 0
        assert only_equiv.removed_by_one_shell == 0
        assert neither.indexed_vertices == social_graph.n
        rng = np.random.default_rng(2)
        pairs = [(int(s), int(t)) for s, t in rng.integers(social_graph.n, size=(60, 2))]
        for variant in (only_shell, only_equiv, neither):
            check_pairs(social_graph, variant, pairs)

    def test_tree_with_twins(self):
        # a star of stars: heavy 1-shell + heavy equivalence interplay
        g = star_graph(8)
        reduced = ReducedSPCIndex.build(g)
        check_pairs(g, reduced, [(s, t) for s in range(g.n) for t in range(g.n)])

    def test_pure_tree(self):
        g = random_tree(40, seed=6)
        reduced = ReducedSPCIndex.build(g)
        assert reduced.indexed_vertices == 0  # everything answered by the fringe
        check_pairs(g, reduced, [(s, t) for s in range(0, 40, 3) for t in range(0, 40, 5)])

    def test_caveman_exhaustive(self):
        g = caveman(3, 4)
        reduced = ReducedSPCIndex.build(g)
        check_pairs(g, reduced, [(s, t) for s in range(g.n) for t in range(g.n)])

    def test_reduction_shrinks_index(self):
        # BA graphs with pendant chains: both stages should bite
        base = barabasi_albert(120, 2, seed=8)
        edges = list(base.edges())
        n = base.n
        for i in range(20):  # attach 20 pendant vertices
            edges.append((i * 3 % n, n + i))
        g = Graph(n + 20, edges)
        reduced = ReducedSPCIndex.build(g)
        plain = PSPCIndex.build(g)
        assert reduced.index.total_entries() < plain.total_entries()
        assert reduced.removed_by_one_shell >= 20

    def test_build_kwargs_forwarded(self, social_graph):
        reduced = ReducedSPCIndex.build(social_graph, builder="hpspc", ordering="hybrid")
        assert reduced.index.config.builder == "hpspc"
        assert reduced.index.config.ordering == "hybrid"

    def test_repr(self, social_graph):
        assert "ReducedSPCIndex" in repr(ReducedSPCIndex.build(social_graph))

    def test_batch_api(self, diamond):
        reduced = ReducedSPCIndex.build(diamond)
        results = reduced.query_batch([(0, 3), (1, 2)])
        assert [r.count for r in results] == [2, 2]
        assert reduced.spc(0, 3) == 2
        assert reduced.distance(0, 3) == 2
