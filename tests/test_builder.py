"""Unit tests for GraphBuilder."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder


class TestGraphBuilder:
    def test_names_assigned_in_first_seen_order(self):
        b = GraphBuilder()
        b.add_edge("x", "y")
        b.add_edge("y", "z")
        g, names = b.build()
        assert names == ["x", "y", "z"]
        assert g.n == 3
        assert g.m == 2

    def test_vertex_id_is_stable(self):
        b = GraphBuilder()
        first = b.vertex_id("a")
        second = b.vertex_id("a")
        assert first == second == 0

    def test_add_vertex_registers_isolated(self):
        b = GraphBuilder()
        b.add_vertex("lonely")
        b.add_edge("a", "b")
        g, names = b.build()
        assert g.n == 3
        assert g.degree(0) == 0
        assert names[0] == "lonely"

    def test_add_edges_bulk(self):
        b = GraphBuilder()
        b.add_edges([(1, 2), (2, 3), (3, 1)])
        g, _ = b.build()
        assert g.m == 3

    def test_integer_and_string_names_coexist(self):
        b = GraphBuilder()
        b.add_edge(7, "seven")
        g, names = b.build()
        assert g.m == 1
        assert set(names) == {7, "seven"}

    def test_counts_before_build(self):
        b = GraphBuilder()
        b.add_edge("a", "b")
        b.add_edge("a", "b")
        assert b.n == 2
        assert b.edge_count == 2  # raw adds, deduplication happens at build

    def test_build_is_single_shot(self):
        b = GraphBuilder()
        b.add_edge("a", "b")
        b.build()
        with pytest.raises(GraphError):
            b.build()

    def test_duplicate_edges_deduplicated_at_build(self):
        b = GraphBuilder()
        b.add_edge("a", "b")
        b.add_edge("b", "a")
        g, _ = b.build()
        assert g.m == 1
