"""Equivalence suite for the vectorized directed build engine.

The central invariant, ported to the two-label digraph index: for a fixed
total order, ``engine="vectorized"`` must produce the **bit-identical**
canonical directed ESPC index (same ``Lin``/``Lout`` labels, same pruning
counters, same per-vertex work units) that the per-vertex reference loops
produce — on every bundled directed generator, with and without
landmarks, and across the int64-overflow fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.digraph.digraph import DiGraph
from repro.digraph.fastbuild import build_pspc_directed_vectorized
from repro.digraph.generators import (
    directed_barabasi_albert,
    directed_cycle,
    directed_grid_road_network,
    directed_powerlaw_cluster,
    directed_watts_strogatz,
)
from repro.digraph.index import DirectedSPCIndex, degree_order_directed
from repro.digraph.labels import CompactDirectedLabelIndex, DirectedLabelIndex
from repro.digraph.pspc import build_pspc_directed
from repro.digraph.traversal import spc_pair_directed
from repro.errors import IndexBuildError

#: One small instance per bundled directed generator family.
GENERATORS = {
    "directed_barabasi_albert": lambda: directed_barabasi_albert(120, 3, seed=5),
    "directed_watts_strogatz": lambda: directed_watts_strogatz(90, 6, 0.2, seed=6),
    "directed_powerlaw_cluster": lambda: directed_powerlaw_cluster(
        110, 3, 0.5, seed=7
    ),
    "directed_grid_road_network": lambda: directed_grid_road_network(
        9, 9, extra_edges=8, seed=8
    ),
}


def directed_diamond_chain(k: int) -> tuple[DiGraph, int]:
    """``k`` diamonds of forward arcs: ``spc(0, end) == 2**k`` (overflow)."""
    edges = []
    prev = 0
    next_id = 1
    for _ in range(k):
        a, b, end = next_id, next_id + 1, next_id + 2
        next_id += 3
        edges += [(prev, a), (prev, b), (a, end), (b, end)]
        prev = end
    return DiGraph(next_id, edges), prev


def assert_engines_bit_identical(graph: DiGraph, num_landmarks: int = 0) -> None:
    """Vectorized build == reference build: labels, counters, work units."""
    order = degree_order_directed(graph)
    ref, ref_stats = build_pspc_directed(graph, order, num_landmarks=num_landmarks)
    vec, vec_stats = build_pspc_directed_vectorized(
        graph, order, num_landmarks=num_landmarks
    )
    assert isinstance(vec, CompactDirectedLabelIndex)
    assert vec.to_directed_index() == ref
    assert vec_stats.pruned_by_rank == ref_stats.pruned_by_rank
    assert vec_stats.pruned_by_query == ref_stats.pruned_by_query
    assert vec_stats.landmark_hits == ref_stats.landmark_hits
    assert vec_stats.iteration_labels == ref_stats.iteration_labels
    assert vec_stats.total_entries == ref_stats.total_entries
    assert len(vec_stats.iteration_costs) == len(ref_stats.iteration_costs)
    for vec_costs, ref_costs in zip(
        vec_stats.iteration_costs, ref_stats.iteration_costs
    ):
        assert np.array_equal(vec_costs, ref_costs)


@pytest.mark.parametrize("num_landmarks", [0, 4], ids=["nolm", "lm4"])
@pytest.mark.parametrize("name", sorted(GENERATORS))
class TestCrossEngineEquivalence:
    def test_bit_identical_index_and_counters(self, name, num_landmarks):
        assert_engines_bit_identical(GENERATORS[name](), num_landmarks=num_landmarks)


class TestCorrectness:
    def test_queries_match_bfs_oracle(self):
        graph = GENERATORS["directed_barabasi_albert"]()
        index, _ = build_pspc_directed_vectorized(graph, degree_order_directed(graph))
        rng = np.random.default_rng(9)
        for _ in range(100):
            s, t = (int(x) for x in rng.integers(graph.n, size=2))
            got = index.query(s, t)
            assert (got.dist, got.count) == spc_pair_directed(graph, s, t)

    def test_directed_cycle_asymmetry(self):
        graph = directed_cycle(7)
        index, _ = build_pspc_directed_vectorized(graph, degree_order_directed(graph))
        assert (index.query(0, 3).dist, index.query(3, 0).dist) == (3, 4)

    def test_trivial_graphs(self):
        for graph in (DiGraph(0, []), DiGraph(1, []), DiGraph(3, [])):
            assert_engines_bit_identical(graph)

    def test_max_iterations_enforced(self):
        graph = directed_cycle(12)
        with pytest.raises(IndexBuildError):
            build_pspc_directed_vectorized(
                graph, degree_order_directed(graph), max_iterations=2
            )

    def test_order_size_validated(self):
        graph = directed_cycle(5)
        with pytest.raises(IndexBuildError):
            build_pspc_directed_vectorized(
                graph, degree_order_directed(directed_cycle(6))
            )


class TestOverflowFallback:
    def test_falls_back_to_reference_and_tuple_labels(self):
        graph, end = directed_diamond_chain(70)  # 2**70 paths: beyond int64
        labels, stats = build_pspc_directed_vectorized(
            graph, degree_order_directed(graph)
        )
        assert isinstance(labels, DirectedLabelIndex)
        assert stats.engine == "reference"  # the exact loops took over
        index = DirectedSPCIndex(labels, stats, graph)
        assert index.spc(0, end) == 2**70
        assert index.spc(end, 0) == 0  # all arcs point forward

    def test_facade_keeps_tuple_store_on_overflow(self):
        graph, end = directed_diamond_chain(70)
        index = DirectedSPCIndex.build(graph)
        assert index.labels.kind == "directed"
        assert index.stats.engine == "reference"
        assert index.config.engine == "reference"
        assert index.spc(0, end) == 2**70
