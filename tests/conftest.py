"""Shared fixtures: canonical small graphs, the paper's running example,
and the ``/dev/shm`` leak guard applied to every suite that spawns workers."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.graph.generators import barabasi_albert, grid_road_network
from repro.graph.graph import Graph
from repro.ordering.base import VertexOrder

_DEV_SHM = Path("/dev/shm")


def _shm_segments() -> set[str]:
    """Names of this project's shared-memory segments currently alive."""
    if not _DEV_SHM.is_dir():  # pragma: no cover - non-Linux
        return set()
    return {p.name for p in _DEV_SHM.iterdir() if p.name.startswith("repro-seg")}


@pytest.fixture
def assert_no_shm_leak():
    """Fail any test that leaves new ``repro-seg-*`` files in ``/dev/shm``.

    Snapshot-based rather than emptiness-based so suites can run in
    parallel with a live server on the same box: only segments *created
    and not released by this test* count as leaks.  Request it anywhere a
    test publishes segments or spawns a worker pool; the procbuild and
    chaos suites apply it wholesale.
    """
    before = _shm_segments()
    yield
    leaked = _shm_segments() - before
    assert not leaked, f"test leaked shm segments: {sorted(leaked)}"


@pytest.fixture
def triangle() -> Graph:
    """K3."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def diamond() -> Graph:
    """Two disjoint length-2 paths between 0 and 3 (spc(0,3) == 2)."""
    return Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


@pytest.fixture
def two_components() -> Graph:
    """A path 0-1-2 plus an isolated edge 3-4."""
    return Graph(5, [(0, 1), (1, 2), (3, 4)])


@pytest.fixture
def paper_graph() -> Graph:
    """The Fig. 2 graph of the paper; vertex ``v_i`` is id ``i - 1``."""
    edges = [
        (0, 2), (0, 3), (0, 4), (0, 9),   # v1-v3, v1-v4, v1-v5, v1-v10
        (6, 3), (6, 4), (6, 5), (6, 7),   # v7-v4, v7-v5, v7-v6, v7-v8
        (1, 3), (1, 9),                   # v2-v4, v2-v10
        (2, 5),                           # v3-v6
        (8, 9), (8, 7),                   # v9-v10, v9-v8
    ]
    return Graph(10, edges)


@pytest.fixture
def paper_order() -> VertexOrder:
    """The paper's total order v1<=v7<=v4<=v10<=v3<=v5<=v6<=v2<=v8<=v9."""
    order = np.array([0, 6, 3, 9, 2, 4, 5, 1, 7, 8])
    return VertexOrder.from_order(order, 10, strategy="paper")


@pytest.fixture
def social_graph() -> Graph:
    """A small scale-free graph standing in for a social network."""
    return barabasi_albert(150, 3, seed=11)


@pytest.fixture
def road_graph() -> Graph:
    """A small grid-with-shortcuts road-network proxy."""
    return grid_road_network(8, 8, extra_edges=6, seed=5)
