"""Unit tests for the directed-graph subsystem (DiGraph + directed ESPC)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.digraph import (
    DiGraph,
    DirectedSPCIndex,
    bfs_counting_directed,
    bfs_distances_directed,
    build_hpspc_directed,
    build_pspc_directed,
    degree_order_directed,
    spc_pair_directed,
    spc_query_directed,
)
from repro.errors import GraphError, IndexBuildError, QueryError, VertexError
from repro.graph.traversal import UNREACHABLE


@pytest.fixture
def dag() -> DiGraph:
    """Two directed routes 0->3 plus a back-arc 3->0."""
    return DiGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])


@pytest.fixture
def random_digraph() -> DiGraph:
    rng = np.random.default_rng(5)
    edges = [(int(a), int(b)) for a, b in rng.integers(60, size=(260, 2)) if a != b]
    return DiGraph(60, edges)


class TestDiGraph:
    def test_arcs_are_directional(self, dag):
        assert dag.has_edge(0, 1)
        assert not dag.has_edge(1, 0)
        assert list(dag.out_neighbors(0)) == [1, 2]
        assert list(dag.in_neighbors(0)) == [3]

    def test_degrees(self, dag):
        assert dag.out_degree(0) == 2
        assert dag.in_degree(0) == 1
        assert int(dag.degrees()[3]) == 3

    def test_duplicates_and_self_loops(self):
        g = DiGraph(3, [(0, 1), (0, 1), (1, 1)])
        assert g.m == 1

    def test_reverse(self, dag):
        rev = dag.reverse()
        assert rev.has_edge(1, 0)
        assert not rev.has_edge(0, 1)
        assert rev.m == dag.m

    def test_validation(self):
        with pytest.raises(VertexError):
            DiGraph(2, [(0, 5)])
        with pytest.raises(GraphError):
            DiGraph(-1, [])

    def test_edges_iteration(self, dag):
        assert sorted(dag.edges()) == [(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]

    def test_equality(self):
        assert DiGraph(2, [(0, 1)]) == DiGraph(2, [(0, 1)])
        assert DiGraph(2, [(0, 1)]) != DiGraph(2, [(1, 0)])


class TestDirectedTraversal:
    def test_forward_distances(self, dag):
        dist = bfs_distances_directed(dag, 0)
        assert list(dist) == [0, 1, 1, 2]

    def test_reverse_distances(self, dag):
        dist = bfs_distances_directed(dag, 0, reverse=True)
        assert int(dist[3]) == 1  # 3 -> 0 directly

    def test_counting_two_routes(self, dag):
        _, count = bfs_counting_directed(dag, 0)
        assert count[3] == 2

    def test_reverse_counting(self, dag):
        _, count = bfs_counting_directed(dag, 3, reverse=True)
        assert count[0] == 2  # two shortest 0 -> 3 paths

    def test_pair_unreachable(self):
        g = DiGraph(3, [(0, 1)])
        assert spc_pair_directed(g, 1, 0) == (UNREACHABLE, 0)

    def test_pair_identity(self, dag):
        assert spc_pair_directed(dag, 2, 2) == (0, 1)


class TestDirectedBuilders:
    def test_pspc_equals_hpspc(self, random_digraph):
        order = degree_order_directed(random_digraph)
        hp, _ = build_hpspc_directed(random_digraph, order)
        ps, _ = build_pspc_directed(random_digraph, order)
        assert hp == ps

    def test_all_pairs_match_bfs(self, dag):
        order = degree_order_directed(dag)
        index, _ = build_pspc_directed(dag, order)
        for s in range(4):
            for t in range(4):
                got = spc_query_directed(index, s, t)
                assert (got.dist, got.count) == spc_pair_directed(dag, s, t)

    def test_asymmetric_answers(self, dag):
        index, _ = build_pspc_directed(dag, degree_order_directed(dag))
        forward = spc_query_directed(index, 0, 3)
        backward = spc_query_directed(index, 3, 0)
        assert (forward.dist, forward.count) == (2, 2)
        assert (backward.dist, backward.count) == (1, 1)

    def test_landmarks_do_not_change_index(self, random_digraph):
        order = degree_order_directed(random_digraph)
        plain, _ = build_pspc_directed(random_digraph, order)
        filtered, stats = build_pspc_directed(random_digraph, order, num_landmarks=8)
        assert plain == filtered
        assert stats.landmark_hits > 0

    def test_random_queries_match_bfs(self, random_digraph):
        index, _ = build_pspc_directed(random_digraph, degree_order_directed(random_digraph))
        rng = np.random.default_rng(9)
        for _ in range(120):
            s, t = (int(x) for x in rng.integers(random_digraph.n, size=2))
            got = spc_query_directed(index, s, t)
            assert (got.dist, got.count) == spc_pair_directed(random_digraph, s, t)

    def test_max_iterations_enforced(self, random_digraph):
        with pytest.raises(IndexBuildError):
            build_pspc_directed(
                random_digraph, degree_order_directed(random_digraph), max_iterations=1
            )

    def test_cycle_graph_directed(self):
        # directed cycle: exactly one path in each direction around the ring
        g = DiGraph(6, [(i, (i + 1) % 6) for i in range(6)])
        index, _ = build_pspc_directed(g, degree_order_directed(g))
        assert spc_query_directed(index, 0, 3).dist == 3
        assert spc_query_directed(index, 3, 0).dist == 3
        assert spc_query_directed(index, 0, 3).count == 1


class TestDirectedFacade:
    def test_build_and_query(self, dag):
        index = DirectedSPCIndex.build(dag)
        assert index.spc(0, 3) == 2
        assert index.distance(3, 0) == 1
        assert index.n == 4

    def test_hpspc_builder_option(self, dag):
        a = DirectedSPCIndex.build(dag, builder="hpspc")
        b = DirectedSPCIndex.build(dag, builder="pspc")
        assert a.labels == b.labels

    def test_unknown_builder(self, dag):
        with pytest.raises(IndexBuildError):
            DirectedSPCIndex.build(dag, builder="nope")

    def test_verify(self, random_digraph):
        DirectedSPCIndex.build(random_digraph).verify_against_bfs(samples=40)

    def test_out_of_range_query(self, dag):
        index = DirectedSPCIndex.build(dag)
        with pytest.raises(QueryError):
            index.query(0, 9)

    def test_label_views(self, dag):
        index = DirectedSPCIndex.build(dag)
        assert any(d == 0 for _, d, _ in index.labels.label_in(0))
        assert any(d == 0 for _, d, _ in index.labels.label_out(0))

    def test_compact_store_is_default(self, random_digraph):
        from repro.digraph.labels import CompactDirectedLabelIndex

        index = DirectedSPCIndex.build(random_digraph)
        assert isinstance(index.labels, CompactDirectedLabelIndex)

    def test_tuple_store_opt_out(self, random_digraph):
        from repro.digraph.labels import DirectedLabelIndex

        index = DirectedSPCIndex.build(random_digraph, store="tuple")
        assert isinstance(index.labels, DirectedLabelIndex)

    def test_save_load_round_trip(self, random_digraph, tmp_path):
        # label-level round trip of the tuple representation
        index = DirectedSPCIndex.build(random_digraph, store="tuple")
        path = tmp_path / "directed.npz"
        index.labels.save(path)
        from repro.digraph.labels import DirectedLabelIndex

        assert DirectedLabelIndex.load(path) == index.labels
