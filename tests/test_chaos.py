"""Chaos suite: fault injection, admission control, graceful degradation.

The serving path's robustness claims, each proven under a deterministic
:class:`~repro.serve.faults.FaultPlan` rather than by killing processes at
random times:

* every injected failure shape (hard crash, dropped pipe, poisoned kernel,
  slow worker) is either absorbed or surfaced as the *documented* error —
  never a hang, never a silently wrong answer;
* answers that do come back are bit-identical to the single-process
  ``query_batch`` on the same index, in every scenario;
* admission control sheds with the typed errors the HTTP layer maps to
  429/504, and the server keeps answering 200s while one worker crash-loops
  (the ISSUE's availability acceptance criterion).
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np
import pytest

from repro.api import QueryService
from repro.core.index import PSPCIndex
from repro.errors import DeadlineError, OverloadError, ServeError
from repro.graph.generators import barabasi_albert
from repro.serve import AsyncQueryService, FaultPlan, WorkerPool
from repro.serve.faults import ENV_VAR, NO_FAULTS


def _random_pairs(n: int, count: int, seed: int = 3) -> list[tuple[int, int]]:
    rng = np.random.default_rng(seed)
    return [(int(s), int(t)) for s, t in rng.integers(n, size=(count, 2))]


@pytest.fixture(scope="module")
def chaos_index() -> PSPCIndex:
    return PSPCIndex.build(barabasi_albert(150, 3, seed=11), num_landmarks=10)


# ----------------------------------------------------------------------
# the fault-plan seam itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_env_round_trip(self):
        plan = FaultPlan.from_env({ENV_VAR: "crash_on_batch=3,workers=0:2,slow_ms=1.5"})
        assert plan == FaultPlan(crash_on_batch=3, workers=(0, 2), slow_ms=1.5)
        assert plan.active

    def test_empty_env_is_the_inert_plan(self):
        assert FaultPlan.from_env({}) is NO_FAULTS
        assert FaultPlan.from_env({ENV_VAR: "  "}) is NO_FAULTS
        assert not NO_FAULTS.active

    def test_unknown_key_raises_loudly(self):
        with pytest.raises(ValueError, match="crash_on_batch"):
            FaultPlan.from_env({ENV_VAR: "crash_after=3"})
        with pytest.raises(ValueError):
            FaultPlan.from_env({ENV_VAR: "crash_on_batch"})  # no '='

    def test_targeting_and_schedule(self):
        plan = FaultPlan(crash_on_batch=2, workers=(1,))
        assert plan.should_crash(1, 2)
        assert not plan.should_crash(0, 2)  # wrong slot
        assert not plan.should_crash(1, 3)  # wrong batch
        broadcast = FaultPlan(slow_ms=10.0)  # empty workers = every slot
        assert broadcast.targets(0) and broadcast.targets(7)
        assert broadcast.sleep_seconds(3) == pytest.approx(0.01)
        assert NO_FAULTS.sleep_seconds(0) == 0.0

    def test_pool_reads_env_when_no_plan_given(self, chaos_index, monkeypatch):
        # the plan targets a slot index that doesn't exist, so serving is
        # unaffected — the assertion is that the env seam reached the pool
        monkeypatch.setenv(ENV_VAR, "crash_on_batch=1,workers=9")
        with WorkerPool(chaos_index, workers=1) as pool:
            assert pool._faults == FaultPlan(crash_on_batch=1, workers=(9,))
            pairs = _random_pairs(chaos_index.n, 8)
            assert pool.query_batch(pairs) == chaos_index.query_batch(pairs)


# ----------------------------------------------------------------------
# injected failures against the pool
# ----------------------------------------------------------------------
@pytest.mark.usefixtures("assert_no_shm_leak")
class TestPoolFaults:
    def test_crash_is_respawned_and_answers_stay_identical(self, chaos_index):
        plan = FaultPlan(crash_on_batch=2, workers=(0,))
        pairs = _random_pairs(chaos_index.n, 48)
        expected = chaos_index.query_batch(pairs)
        with WorkerPool(chaos_index, workers=2, faults=plan, max_respawns=2) as pool:
            for _ in range(3):  # batch 2 kills worker 0 mid-flight
                assert pool.query_batch(pairs) == expected
            stats = pool.stats()
            assert stats["respawns"] >= 1
            assert stats["health"] == "ok"  # crash streak never exhausted

    def test_dropped_pipe_is_treated_as_a_crash(self, chaos_index):
        plan = FaultPlan(drop_pipe_on_batch=1, workers=(1,))
        pairs = _random_pairs(chaos_index.n, 32)
        with WorkerPool(chaos_index, workers=2, faults=plan, max_respawns=2) as pool:
            assert pool.query_batch(pairs) == chaos_index.query_batch(pairs)
            assert pool.stats()["respawns"] >= 1

    def test_poisoned_kernel_raises_then_recovers(self, chaos_index):
        # a kernel exception is NOT degradation material: it would fail
        # in-process too, so it surfaces as ServeError (HTTP 500) — but the
        # worker survives and the next batch is clean
        plan = FaultPlan(poison_on_batch=1, workers=(0,))
        pairs = _random_pairs(chaos_index.n, 16)
        with WorkerPool(chaos_index, workers=2, faults=plan) as pool:
            with pytest.raises(ServeError, match="poisoned shard"):
                pool.query_batch(pairs)
            assert pool.query_batch(pairs) == chaos_index.query_batch(pairs)
            assert pool.health() == "ok"

    def test_slow_worker_inflates_latency_not_answers(self, chaos_index):
        plan = FaultPlan(slow_ms=120.0, workers=(0,))
        pairs = _random_pairs(chaos_index.n, 16)
        with WorkerPool(chaos_index, workers=2, faults=plan) as pool:
            start = time.perf_counter()
            answers = pool.query_batch(pairs)
            elapsed = time.perf_counter() - start
        assert answers == chaos_index.query_batch(pairs)
        assert elapsed >= 0.12  # the injected sleep dominates the batch

    def test_sustained_crash_looping_retires_the_slot(self, chaos_index):
        # crash on every batch of every life: the streak budget exhausts
        # and the slot quarantines, after which batches are clean again
        plan = FaultPlan(crash_on_batch=1, workers=(0,))
        pairs = _random_pairs(chaos_index.n, 32)
        with WorkerPool(chaos_index, workers=2, faults=plan, max_respawns=1) as pool:
            assert pool.query_batch(pairs) == chaos_index.query_batch(pairs)
            assert pool.health() == "degraded"
            stats = pool.stats()
            assert stats["retired_workers"] == 1
            assert stats["fallback_queries"] > 0  # the orphaned shard
            again = _random_pairs(chaos_index.n, 32, seed=9)
            assert pool.query_batch(again) == chaos_index.query_batch(again)


# ----------------------------------------------------------------------
# admission control (async service and its sync twin)
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_full_pending_queue_rejects_with_overload(self, chaos_index):
        async def main():
            # batch_size larger than the bound: nothing flushes on its own
            async with AsyncQueryService(
                chaos_index, batch_size=64, max_wait=5.0, max_pending=4
            ) as service:
                tasks = [asyncio.ensure_future(service.submit(0, i)) for i in range(1, 5)]
                await asyncio.sleep(0)  # let the submits enqueue
                with pytest.raises(OverloadError):
                    await service.submit(0, 5)
                assert service.stats()["overloads"] == 1
                await service.flush()
                return await asyncio.gather(*tasks)

        results = asyncio.run(main())
        assert [r.count for r in results] == [
            chaos_index.query(0, i).count for i in range(1, 5)
        ]

    def test_expired_deadline_sheds_before_the_kernel(self, chaos_index):
        async def main():
            async with AsyncQueryService(
                chaos_index, batch_size=64, max_wait=0.05
            ) as service:
                task = asyncio.ensure_future(service.submit(0, 5, deadline_ms=1.0))
                with pytest.raises(DeadlineError):
                    await task  # the 50 ms timer flush finds it expired
                stats = service.stats()
                assert stats["deadline_shed"] == 1
                # an unexpired co-batched query is unaffected
                assert (await service.submit(0, 5)).count == chaos_index.query(0, 5).count

        asyncio.run(main())

    def test_bulk_deadline_sheds_remaining_chunks(self, chaos_index):
        async def main():
            async with AsyncQueryService(chaos_index, batch_size=8) as service:
                pairs = _random_pairs(chaos_index.n, 64)
                with pytest.raises(DeadlineError):
                    await service.query_batch(pairs, deadline_ms=1e-6)
                assert service.stats()["deadline_shed"] > 0

        asyncio.run(main())

    def test_inflight_gate_defers_but_answers_everything(self, chaos_index):
        async def main():
            async with AsyncQueryService(
                chaos_index, batch_size=4, max_wait=0.001, max_inflight=1
            ) as service:
                pairs = _random_pairs(chaos_index.n, 32, seed=21)
                results = await asyncio.gather(
                    *(service.submit(s, t) for s, t in pairs)
                )
                assert service.stats()["batches"] >= 2
                return results

        results = asyncio.run(main())
        pairs = _random_pairs(chaos_index.n, 32, seed=21)
        assert [(r.dist, r.count) for r in results] == [
            (r.dist, r.count) for r in chaos_index.query_batch(pairs)
        ]

    def test_sync_twin_overload_and_deadline_parity(self, chaos_index):
        with QueryService(
            chaos_index, batch_size=64, max_wait=5.0, max_pending=2
        ) as service:
            service.submit(0, 1)
            service.submit(0, 2)
            with pytest.raises(OverloadError):
                service.submit(0, 3)
            assert service.stats()["overloads"] == 1
        with QueryService(chaos_index, batch_size=64, max_wait=0.02) as service:
            handle = service.submit(0, 5, deadline_ms=0.001)
            time.sleep(0.005)
            service.flush()
            with pytest.raises(DeadlineError):
                handle.result(timeout=1.0)
            assert service.stats()["deadline_shed"] == 1


# ----------------------------------------------------------------------
# the acceptance scenario: HTTP serving while a worker crash-loops
# ----------------------------------------------------------------------
async def _raw_request(port: int, method: str, path: str, body: bytes = b"") -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: 127.0.0.1\r\nContent-Length: {len(body)}\r\n\r\n"
        ).encode()
        + body
    )
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    while (await reader.readline()).strip():
        pass  # drain headers
    payload = await reader.read()
    writer.close()
    await writer.wait_closed()
    return status, payload


@pytest.mark.usefixtures("assert_no_shm_leak")
class TestHttpUnderFaults:
    def test_server_keeps_answering_while_a_worker_crash_loops(self, chaos_index):
        """The ISSUE acceptance criterion, end to end over loopback.

        One worker dies on every 2nd batch of every life while concurrent
        HTTP clients hammer /query and /query_batch: every response must be
        200/429/504 (never 500, never a hang) and every 200 bit-identical
        to the single-process kernel.
        """
        from repro.serve.http import serve

        plan = FaultPlan(crash_on_batch=2, workers=(0,))
        pairs = _random_pairs(chaos_index.n, 120, seed=31)
        expected = {
            (r.s, r.t): (r.dist, r.count) for r in chaos_index.query_batch(pairs)
        }
        pool = WorkerPool(chaos_index, workers=2, faults=plan, max_respawns=3)

        async def main():
            service = AsyncQueryService(
                pool=pool, batch_size=16, max_wait=0.002, max_pending=512
            )
            ready: asyncio.Future = asyncio.get_running_loop().create_future()
            stop = asyncio.Event()
            server_task = asyncio.ensure_future(
                serve(service, "127.0.0.1", 0, ready=ready, stop=stop)
            )
            _, port = await asyncio.wait_for(ready, timeout=10)

            async def point(s: int, t: int):
                return await _raw_request(port, "GET", f"/query?s={s}&t={t}")

            responses = await asyncio.gather(
                *(point(s, t) for s, t in pairs[:100]),
                _raw_request(
                    port,
                    "POST",
                    "/query_batch",
                    json.dumps({"pairs": [list(p) for p in pairs[100:]]}).encode(),
                ),
            )
            health_status, health_raw = await _raw_request(port, "GET", "/healthz")
            metrics_status, metrics_raw = await _raw_request(port, "GET", "/metrics")
            stop.set()
            await asyncio.wait_for(server_task, timeout=15)
            return responses, (health_status, health_raw), (metrics_status, metrics_raw)

        try:
            responses, health, metrics = asyncio.run(
                asyncio.wait_for(main(), timeout=120)
            )
        finally:
            pool.close()

        statuses = [status for status, _ in responses]
        assert all(status in (200, 429, 504) for status in statuses), statuses
        assert statuses.count(200) >= 1
        for (status, payload), (s, t) in zip(responses[:100], pairs[:100]):
            if status == 200:
                answer = json.loads(payload)
                assert (answer["dist"], answer["count"]) == expected[(s, t)]
        batch_status, batch_payload = responses[-1]
        if batch_status == 200:
            for row in json.loads(batch_payload)["results"]:
                assert (row["dist"], row["count"]) == expected[(row["s"], row["t"])]

        health_status, health_body = health[0], json.loads(health[1])
        assert health_status == 200  # respawns kept every slot live
        assert health_body["status"] in ("ok", "degraded")
        assert health_body["live_workers"] + health_body["retired_workers"] == 2
        assert health_body["respawns"] >= 1

        metrics_status, metrics_text = metrics[0], metrics[1].decode()
        assert metrics_status == 200
        assert "repro_queries_total" in metrics_text
        assert "repro_pool_respawns_total" in metrics_text
        assert "repro_request_latency_seconds_bucket" in metrics_text
        assert "repro_health 0" in metrics_text or "repro_health 1" in metrics_text

    def test_healthz_reports_critical_as_503(self, chaos_index):
        from repro.serve.http import serve

        plan = FaultPlan(crash_on_batch=1)  # every slot, every life
        pool = WorkerPool(chaos_index, workers=2, faults=plan, max_respawns=0)

        async def main():
            service = AsyncQueryService(pool=pool, batch_size=4, max_wait=0.001)
            ready: asyncio.Future = asyncio.get_running_loop().create_future()
            stop = asyncio.Event()
            server_task = asyncio.ensure_future(
                serve(service, "127.0.0.1", 0, ready=ready, stop=stop)
            )
            _, port = await asyncio.wait_for(ready, timeout=10)
            # a batch wide enough to shard onto BOTH slots retires both
            # on first contact -> every later answer is in-process fallback
            pairs = _random_pairs(chaos_index.n, 8, seed=41)
            status, payload = await _raw_request(
                port,
                "POST",
                "/query_batch",
                json.dumps({"pairs": [list(p) for p in pairs]}).encode(),
            )
            health_status, health_raw = await _raw_request(port, "GET", "/healthz")
            stop.set()
            await asyncio.wait_for(server_task, timeout=15)
            return pairs, status, payload, health_status, json.loads(health_raw)

        try:
            pairs, status, payload, health_status, health = asyncio.run(
                asyncio.wait_for(main(), timeout=120)
            )
        finally:
            pool.close()

        assert status == 200  # degraded serving still answers, correctly
        rows = json.loads(payload)["results"]
        assert [(r["dist"], r["count"]) for r in rows] == [
            (r.dist, r.count) for r in chaos_index.query_batch(pairs)
        ]
        assert health_status == 503
        assert health["status"] == "critical"
        assert health["live_workers"] == 0
