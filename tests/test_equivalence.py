"""Unit tests for the neighbourhood-equivalence reduction (Section IV-B)."""

from __future__ import annotations

import pytest

from repro.errors import ReductionError
from repro.graph.generators import complete_graph, star_graph
from repro.graph.graph import Graph
from repro.graph.traversal import spc_pair
from repro.reduction.equivalence import EquivalenceReduction


def exhaustive_check(graph: Graph) -> None:
    reduction = EquivalenceReduction(graph)
    reduced = reduction.reduced_graph

    def reduced_query(s: int, t: int) -> tuple[int, int]:
        return spc_pair(reduced, s, t)

    for s in range(graph.n):
        for t in range(graph.n):
            got = reduction.query_via(reduced_query, s, t)
            assert got == spc_pair(graph, s, t), (s, t, got)


class TestClassDetection:
    def test_open_twins(self):
        # two twin pairs: {1, 2} share {0, 3}; {0, 3} share {1, 2}
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        reduction = EquivalenceReduction(g)
        assert reduction.removed == 2
        assert set(reduction.class_members(1)) == {1, 2}
        assert set(reduction.class_members(0)) == {0, 3}

    def test_closed_twins_in_clique(self):
        reduction = EquivalenceReduction(complete_graph(5))
        assert reduction.reduced_graph.n == 1
        assert int(reduction.reduced_graph.vertex_weights[0]) == 5

    def test_star_leaves_merge(self):
        reduction = EquivalenceReduction(star_graph(6))
        assert reduction.reduced_graph.n == 2
        assert reduction.removed == 5

    def test_no_twins_no_change(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        reduction = EquivalenceReduction(g)
        assert reduction.removed == 0
        assert reduction.reduced_graph == g

    def test_weights_accumulate(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)], vertex_weights=[1, 2, 3, 1])
        reduction = EquivalenceReduction(g)
        rep = reduction.reduced_id(1)
        assert int(reduction.reduced_graph.vertex_weights[rep]) == 5


class TestQueries:
    def test_diamond_exhaustive(self, diamond):
        exhaustive_check(diamond)

    def test_clique_exhaustive(self):
        exhaustive_check(complete_graph(6))

    def test_star_exhaustive(self):
        exhaustive_check(star_graph(7))

    def test_bipartite_twins_exhaustive(self):
        # K_{2,3}: the 3-side are open twins, the 2-side too
        g = Graph(5, [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)])
        exhaustive_check(g)

    def test_mixed_adjacent_and_open_twins(self):
        # clique {0,1,2} plus open twins 3,4 attached to {0,1}
        g = Graph(5, [(0, 1), (0, 2), (1, 2), (3, 0), (3, 1), (4, 0), (4, 1)])
        exhaustive_check(g)

    def test_social_graph_spot_check(self, social_graph):
        reduction = EquivalenceReduction(social_graph)
        reduced = reduction.reduced_graph

        def reduced_query(s, t):
            return spc_pair(reduced, s, t)

        for s in range(0, social_graph.n, 13):
            for t in range(0, social_graph.n, 17):
                assert reduction.query_via(reduced_query, s, t) == spc_pair(social_graph, s, t)

    def test_isolated_twins_unreachable(self):
        g = Graph(3, [(0, 1)])  # vertex 2 isolated; no twins for it
        reduction = EquivalenceReduction(g)
        assert reduction.query_via(lambda s, t: spc_pair(reduction.reduced_graph, s, t), 0, 2) == (-1, 0)

    def test_two_isolated_vertices_are_twins(self):
        g = Graph(4, [(0, 1)])
        reduction = EquivalenceReduction(g)
        assert reduction.reduced_id(2) == reduction.reduced_id(3)
        # same-class, empty common neighbourhood -> unreachable
        assert reduction.resolve(2, 3) == (-1, 0)

    def test_out_of_range_rejected(self, triangle):
        with pytest.raises(ReductionError):
            EquivalenceReduction(triangle).resolve(5, 0)
