"""Integration tests for the experiment harness (cheap configurations only)."""

from __future__ import annotations

import pytest

from repro.experiments import harness


KEYS = ["FB", "WI"]  # the two cheapest datasets


class TestHeadlineExperiments:
    def test_table3_rows(self):
        rows = harness.exp_table3_datasets(KEYS)
        assert [r["dataset"] for r in rows] == KEYS
        assert all(r["V"] > 0 and r["E"] > 0 for r in rows)

    def test_indexing_time_rows(self):
        rows = harness.exp_indexing_time(KEYS, threads=8, num_landmarks=20)
        for row in rows:
            assert row["hpspc_s"] > 0
            assert row["pspc_s"] > 0
            # the simulated 8-thread run must beat one thread
            assert row["pspc_plus_s"] < row["pspc_s"]

    def test_index_size_rows(self):
        rows = harness.exp_index_size(KEYS)
        for row in rows:
            assert row["identical"], "PSPC must equal HP-SPC"
            assert row["pspc_mb"] == row["pspc_plus_mb"]
            assert row["pspc_mb"] > 0

    def test_query_time_rows(self):
        rows = harness.exp_query_time(KEYS, n_queries=200, threads=8)
        for row in rows:
            assert row["mean_us"] > 0
            assert row["pspc_plus_mean_us"] < row["mean_us"]


class TestSpeedupExperiments:
    def test_build_speedup_shape(self):
        rows = harness.exp_build_speedup(KEYS, threads=(1, 4, 16))
        by_dataset: dict[str, list[float]] = {}
        for row in rows:
            by_dataset.setdefault(row["dataset"], []).append(row["speedup"])
        for series in by_dataset.values():
            assert series[0] == pytest.approx(1.0)
            assert series == sorted(series)

    def test_query_speedup_shape(self):
        rows = harness.exp_query_speedup(KEYS, threads=(1, 8), n_queries=200)
        speedups = {(r["dataset"], r["threads"]): r["speedup"] for r in rows}
        for key in KEYS:
            assert speedups[(key, 1)] == pytest.approx(1.0)
            assert speedups[(key, 8)] > 2.0


class TestAblations:
    def test_landmark_ablation(self):
        rows = harness.exp_ablation_landmarks(KEYS, threads=8, num_landmarks=30)
        for row in rows:
            assert row["identical_index"]
            assert row["ll_s"] > 0 and row["nll_s"] > 0

    def test_schedule_ablation(self):
        rows = harness.exp_ablation_schedule(KEYS, threads=8)
        for row in rows:
            assert row["dynamic_s"] <= row["static_s"] + 1e-9

    def test_order_ablation(self):
        rows = harness.exp_ablation_order(["FB"], threads=8)
        row = rows[0]
        assert row["degree_s"] > 0
        assert row["sig_s"] > 0
        assert row["hybrid_s"] > 0

    def test_delta_effect(self):
        rows = harness.exp_delta_effect(["FB"], deltas=(2, 10), n_queries=50, threads=8)
        assert len(rows) == 2
        assert all(r["size_mb"] > 0 for r in rows)

    def test_landmark_count_sweep(self):
        rows = harness.exp_landmark_count(["FB"], counts=(0, 20), threads=8)
        assert [r["landmarks"] for r in rows] == [0, 20]

    def test_time_breakdown(self):
        rows = harness.exp_time_breakdown(["FB"], num_landmarks=20)
        row = rows[0]
        assert row["construction_s"] > 0
        assert row["landmarks_s"] > 0
        # label construction dominates, as in the paper's Fig. 13
        assert row["construction_s"] > row["order_s"]


class TestFormatting:
    def test_format_rows_aligns_columns(self):
        text = harness.format_rows([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_rows_empty(self):
        assert "(no rows)" in harness.format_rows([], title="x")
