"""Unit tests for the SPC applications: betweenness, GBC, top-k."""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications.betweenness import brandes_betweenness, spc_betweenness
from repro.applications.group_betweenness import group_betweenness, pairwise_matrices
from repro.applications.topk import top_k_nearest
from repro.baselines.bfs_spc import OnlineBFSCounter
from repro.core.index import PSPCIndex
from repro.errors import QueryError
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.traversal import spc_pair


def reference_betweenness(graph: Graph) -> np.ndarray:
    """O(n^3) textbook betweenness for cross-checking Brandes."""
    n = graph.n
    result = np.zeros(n, dtype=np.float64)
    for s in range(n):
        for t in range(s + 1, n):
            d_st, c_st = spc_pair(graph, s, t)
            if c_st == 0:
                continue
            for v in range(n):
                if v in (s, t):
                    continue
                d_sv, c_sv = spc_pair(graph, s, v)
                d_vt, c_vt = spc_pair(graph, v, t)
                if d_sv >= 0 and d_vt >= 0 and d_sv + d_vt == d_st:
                    result[v] += c_sv * c_vt / c_st
    return result


class TestBrandes:
    def test_star_center(self):
        bc = brandes_betweenness(star_graph(5))
        assert bc[0] == pytest.approx(10.0)  # C(5,2) leaf pairs
        assert np.allclose(bc[1:], 0.0)

    def test_path_interior(self):
        bc = brandes_betweenness(path_graph(5))
        assert bc[2] == pytest.approx(4.0)
        assert bc[0] == pytest.approx(0.0)

    def test_complete_graph_zero(self):
        assert np.allclose(brandes_betweenness(complete_graph(5)), 0.0)

    def test_matches_reference(self, diamond):
        assert np.allclose(brandes_betweenness(diamond), reference_betweenness(diamond))

    def test_matches_reference_random(self):
        g = barabasi_albert(40, 2, seed=12)
        assert np.allclose(brandes_betweenness(g), reference_betweenness(g))

    def test_normalization(self):
        g = star_graph(5)
        bc = brandes_betweenness(g, normalized=True)
        assert bc[0] == pytest.approx(1.0)


class TestSPCBetweenness:
    """The index-query route must reproduce Brandes exactly."""

    def test_matches_brandes_small(self, diamond):
        index = PSPCIndex.build(diamond)
        assert np.allclose(spc_betweenness(index), brandes_betweenness(diamond))

    def test_matches_brandes_random(self):
        g = barabasi_albert(60, 2, seed=18)
        index = PSPCIndex.build(g)
        assert np.allclose(spc_betweenness(index), brandes_betweenness(g))

    def test_matches_brandes_disconnected(self, two_components):
        index = PSPCIndex.build(two_components)
        assert np.allclose(
            spc_betweenness(index), brandes_betweenness(two_components)
        )

    def test_sampled_pairs_partial_sum(self, diamond):
        index = PSPCIndex.build(diamond)
        # vertex 1 sits on one of the two shortest 0-3 paths
        bc = spc_betweenness(index, pairs=[(0, 3)])
        assert bc[1] == pytest.approx(0.5)
        assert bc[2] == pytest.approx(0.5)
        assert bc[0] == bc[3] == 0.0

    def test_normalization(self):
        g = star_graph(5)
        index = PSPCIndex.build(g)
        assert spc_betweenness(index, normalized=True)[0] == pytest.approx(1.0)


class TestGroupBetweenness:
    def test_star_center_group(self):
        g = star_graph(5)
        # all 10 leaf pairs route through the center
        assert group_betweenness(g, [0]) == pytest.approx(10.0)

    def test_singleton_matches_brandes(self):
        g = barabasi_albert(35, 2, seed=13)
        bc = brandes_betweenness(g)
        for v in (0, 5, 20):
            assert group_betweenness(g, [v]) == pytest.approx(float(bc[v]))

    def test_group_at_most_sum_of_singletons(self):
        g = barabasi_albert(30, 2, seed=14)
        pair = [0, 1]
        combined = group_betweenness(g, pair)
        singles = sum(group_betweenness(g, [v]) for v in pair)
        assert combined <= singles + 1e-9

    def test_empty_group(self, diamond):
        assert group_betweenness(diamond, []) == 0.0

    def test_cycle_symmetric_group(self):
        g = cycle_graph(6)
        # vertices 1..4 pairs; fraction through {0}: only pairs whose
        # shortest path passes 0; cross-checked against brandes
        assert group_betweenness(g, [0]) == pytest.approx(float(brandes_betweenness(g)[0]))

    def test_reuses_supplied_index(self, diamond):
        index = PSPCIndex.build(diamond)
        assert group_betweenness(diamond, [1], index=index) == pytest.approx(0.5)

    def test_wrong_index_rejected(self, diamond, triangle):
        index = PSPCIndex.build(triangle)
        with pytest.raises(QueryError):
            group_betweenness(diamond, [1], index=index)


class TestPairwiseMatrices:
    def test_matrices_match_queries(self, social_graph):
        index = PSPCIndex.build(social_graph)
        group = [0, 3, 9, 27]
        dist, sigma = pairwise_matrices(index, group)
        assert dist.shape == sigma.shape == (4, 4)
        for i, s in enumerate(group):
            assert sigma[i, i] == 1.0
            for j, t in enumerate(group):
                if i < j:
                    expected = spc_pair(social_graph, s, t)
                    assert dist[i, j] == expected[0]
                    assert sigma[i, j] == float(expected[1])

    def test_symmetry(self, social_graph):
        index = PSPCIndex.build(social_graph)
        dist, sigma = pairwise_matrices(index, [1, 2, 3])
        assert np.array_equal(dist, dist.T)
        assert np.array_equal(sigma, sigma.T)


class TestTopK:
    @pytest.fixture
    def road_index(self, road_graph):
        return PSPCIndex.build(road_graph)

    def test_ranked_by_distance_then_count(self, road_index, road_graph):
        source = 0
        candidates = list(range(1, road_graph.n, 5))
        ranked = top_k_nearest(road_index, source, candidates, k=5)
        assert len(ranked) == 5
        keys = [(r.dist, -r.count, r.vertex) for r in ranked]
        assert keys == sorted(keys)

    def test_spc_breaks_ties(self):
        # 0 at distance 2 from both 3 (one path) and 4 (two paths)
        g = Graph(6, [(0, 1), (1, 3), (0, 2), (2, 4), (0, 5), (5, 4)])
        index = PSPCIndex.build(g)
        ranked = top_k_nearest(index, 0, [3, 4], k=2)
        assert ranked[0].vertex == 4
        assert ranked[0].count == 2

    def test_unreachable_candidates_dropped(self, two_components):
        index = PSPCIndex.build(two_components)
        ranked = top_k_nearest(index, 0, [1, 4], k=5)
        assert [r.vertex for r in ranked] == [1]

    def test_works_with_bfs_baseline(self, diamond):
        ranked = top_k_nearest(OnlineBFSCounter(diamond), 0, [1, 2, 3], k=2)
        assert len(ranked) == 2

    def test_invalid_k(self, road_index):
        with pytest.raises(QueryError):
            top_k_nearest(road_index, 0, [1], k=0)
