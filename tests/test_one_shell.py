"""Unit tests for the 1-shell reduction (Section IV-A)."""

from __future__ import annotations

import pytest

from repro.errors import ReductionError
from repro.graph.generators import cycle_graph, path_graph, random_tree
from repro.graph.graph import Graph
from repro.graph.traversal import spc_pair
from repro.reduction.one_shell import OneShellReduction


def exhaustive_check(graph: Graph) -> None:
    """Assert the reduction answers every pair exactly (BFS core oracle)."""
    reduction = OneShellReduction(graph)
    core = reduction.core_graph

    def core_query(s: int, t: int) -> tuple[int, int]:
        return spc_pair(core, s, t)

    for s in range(graph.n):
        for t in range(graph.n):
            assert reduction.query_via(core_query, s, t) == spc_pair(graph, s, t), (s, t)


class TestSplit:
    def test_cycle_keeps_everything(self):
        reduction = OneShellReduction(cycle_graph(7))
        assert reduction.core_size == 7
        assert reduction.fringe_size == 0

    def test_tree_peels_everything(self):
        reduction = OneShellReduction(random_tree(25, seed=2))
        assert reduction.core_size == 0
        assert reduction.fringe_size == 25

    def test_lollipop(self):
        # triangle 0-1-2 with tail 2-3-4
        g = Graph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
        reduction = OneShellReduction(g)
        assert reduction.core_size == 3
        assert reduction.anchor(4) == 2
        assert reduction.depth(4) == 2
        assert reduction.core_id(3) == -1
        assert reduction.core_id(0) >= 0


class TestQueries:
    def test_lollipop_exhaustive(self):
        g = Graph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
        exhaustive_check(g)

    def test_two_trees_on_same_anchor(self):
        # triangle with two separate branches hanging off vertex 0
        g = Graph(7, [(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 5), (5, 6)])
        exhaustive_check(g)

    def test_pure_tree_exhaustive(self):
        exhaustive_check(random_tree(30, seed=4))

    def test_path_graph_exhaustive(self):
        exhaustive_check(path_graph(9))

    def test_forest_cross_component_unreachable(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        exhaustive_check(g)

    def test_mixed_graph_exhaustive(self, social_graph):
        # BA graphs have m=3 so little fringe; attach explicit tendrils
        edges = list(social_graph.edges())
        n = social_graph.n
        edges += [(0, n), (n, n + 1), (5, n + 2)]
        g = Graph(n + 3, edges)
        reduction = OneShellReduction(g)
        assert reduction.fringe_size >= 3

        def core_query(s, t):
            return spc_pair(reduction.core_graph, s, t)

        for s in [0, 5, n, n + 1, n + 2, 17]:
            for t in [1, n, n + 1, n + 2, 33]:
                assert reduction.query_via(core_query, s, t) == spc_pair(g, s, t)

    def test_out_of_range_rejected(self, triangle):
        reduction = OneShellReduction(triangle)
        with pytest.raises(ReductionError):
            reduction.resolve(0, 99)

    def test_identity_query(self, triangle):
        reduction = OneShellReduction(triangle)
        assert reduction.resolve(1, 1) == (0, 1)
