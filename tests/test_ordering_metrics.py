"""Unit tests for the order-quality diagnostics."""

from __future__ import annotations

import pytest

from repro.graph.generators import star_graph
from repro.ordering.base import VertexOrder, identity_order
from repro.ordering.degree import degree_order
from repro.ordering.metrics import degree_rank_correlation, top_vertex_rank_profile

import numpy as np


class TestTopVertexRankProfile:
    def test_star_hub_always_rank_zero(self):
        g = star_graph(6)
        vo = degree_order(g)
        quality = top_vertex_rank_profile(g, vo, samples=30, seed=1)
        # every leaf-to-leaf shortest path passes through the rank-0 hub
        assert quality.mean_top_rank == 0.0
        assert quality.samples > 0

    def test_bad_order_scores_worse(self, social_graph):
        good = degree_order(social_graph)
        bad = VertexOrder.from_order(good.order[::-1].copy(), social_graph.n, "reversed")
        q_good = top_vertex_rank_profile(social_graph, good, samples=60, seed=2)
        q_bad = top_vertex_rank_profile(social_graph, bad, samples=60, seed=2)
        assert q_good.mean_top_rank < q_bad.mean_top_rank

    def test_strategy_reported(self, social_graph):
        quality = top_vertex_rank_profile(social_graph, degree_order(social_graph), samples=5)
        assert quality.strategy == "degree"


class TestDegreeRankCorrelation:
    def test_degree_order_is_perfectly_correlated(self, social_graph):
        assert degree_rank_correlation(social_graph, degree_order(social_graph)) == pytest.approx(1.0)

    def test_reversed_order_anticorrelated(self, social_graph):
        good = degree_order(social_graph)
        bad = VertexOrder.from_order(good.order[::-1].copy(), social_graph.n, "reversed")
        assert degree_rank_correlation(social_graph, bad) == pytest.approx(-1.0)

    def test_identity_on_regular_graph(self):
        # all degrees equal -> degree ranks equal ids -> correlation 1 with identity
        from repro.graph.generators import cycle_graph

        g = cycle_graph(8)
        assert degree_rank_correlation(g, identity_order(g)) == pytest.approx(1.0)

    def test_tiny_graph_returns_one(self):
        from repro.graph.graph import Graph

        g = Graph(1, [])
        assert degree_rank_correlation(g, identity_order(g)) == 1.0
