"""Unit tests for graph I/O round-trips and format validation."""

from __future__ import annotations

import pytest

from repro.errors import GraphFormatError
from repro.graph import io
from repro.graph.generators import barabasi_albert
from repro.graph.graph import Graph


@pytest.fixture
def sample() -> Graph:
    return barabasi_albert(40, 2, seed=6)


class TestEdgeList:
    def test_round_trip(self, sample, tmp_path):
        # relabel=False preserves ids exactly; relabel=True only guarantees
        # an isomorphic graph (first-seen id compaction).
        path = tmp_path / "g.txt"
        io.write_edge_list(sample, path)
        assert io.read_edge_list(path, relabel=False) == sample
        relabeled = io.read_edge_list(path, relabel=True)
        assert relabeled.n == sample.n
        assert relabeled.m == sample.m

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# snap header\n% konect header\n\n0 1\n1 2\n// trailing\n")
        g = io.read_edge_list(path)
        assert g.n == 3
        assert g.m == 2

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 1590000000\n1 2 42\n")
        assert io.read_edge_list(path).m == 2

    def test_relabel_compacts_sparse_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1000 2000\n2000 3000\n")
        g = io.read_edge_list(path, relabel=True)
        assert g.n == 3

    def test_no_relabel_keeps_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 5\n")
        g = io.read_edge_list(path, relabel=False)
        assert g.n == 6

    def test_no_relabel_rejects_negative(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("-3 5\n")
        with pytest.raises(GraphFormatError):
            io.read_edge_list(path, relabel=False)

    def test_single_column_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("42\n")
        with pytest.raises(GraphFormatError):
            io.read_edge_list(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            io.read_edge_list(path)

    def test_header_written(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        io.write_edge_list(sample, path, header="my graph")
        assert path.read_text().startswith("# my graph")


class TestMetis:
    def test_round_trip(self, sample, tmp_path):
        path = tmp_path / "g.metis"
        io.write_metis(sample, path)
        assert io.read_metis(path) == sample

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("")
        with pytest.raises(GraphFormatError):
            io.read_metis(path)

    def test_row_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("3 1\n2\n1\n")  # header says 3 vertices, 2 rows follow
        with pytest.raises(GraphFormatError):
            io.read_metis(path)

    def test_edge_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(GraphFormatError):
            io.read_metis(path)

    def test_neighbour_out_of_range_rejected(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 1\n9\n1\n")
        with pytest.raises(GraphFormatError):
            io.read_metis(path)


class TestBinaryFormats:
    def test_npz_round_trip(self, sample, tmp_path):
        path = tmp_path / "g.npz"
        io.save_npz(sample, path)
        assert io.load_npz(path) == sample

    def test_npz_preserves_weights(self, tmp_path):
        g = Graph(3, [(0, 1), (1, 2)], vertex_weights=[2, 3, 4])
        path = tmp_path / "g.npz"
        io.save_npz(g, path)
        assert list(io.load_npz(path).vertex_weights) == [2, 3, 4]

    def test_json_round_trip(self, sample, tmp_path):
        path = tmp_path / "g.json"
        io.save_json(sample, path)
        assert io.load_json(path) == sample

    def test_json_corrupt_rejected(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text("{not json")
        with pytest.raises(GraphFormatError):
            io.load_json(path)

    def test_json_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text('{"edges": []}')
        with pytest.raises(GraphFormatError):
            io.load_json(path)
