"""Tests for the exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            exc_type = getattr(errors, name)
            assert issubclass(exc_type, errors.ReproError)

    def test_vertex_error_is_also_index_error(self):
        # so sloppy `except IndexError` call sites still work
        assert issubclass(errors.VertexError, IndexError)

    def test_vertex_error_message(self):
        exc = errors.VertexError(7, 3)
        assert exc.vertex == 7
        assert exc.n == 3
        assert "7" in str(exc) and "3" in str(exc)

    def test_index_errors_grouped(self):
        assert issubclass(errors.IndexBuildError, errors.IndexError_)
        assert issubclass(errors.QueryError, errors.IndexError_)
        assert issubclass(errors.IndexStateError, errors.IndexError_)

    def test_catching_base_catches_subsystems(self):
        with pytest.raises(errors.ReproError):
            raise errors.DatasetError("nope")
