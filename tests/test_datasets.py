"""Unit tests for the benchmark dataset registry."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.experiments.datasets import (
    DATASETS,
    PAPER_STATS,
    dataset_names,
    load_dataset,
    random_query_pairs,
)
from repro.graph.properties import is_connected


class TestRegistry:
    def test_ten_paper_datasets(self):
        names = dataset_names()
        assert len(names) == 10
        assert names[0] == "FB"
        assert names[-1] == "IN"

    def test_road_dataset_optional(self):
        assert "ROAD" in dataset_names(include_road=True)
        assert "ROAD" not in dataset_names()

    def test_all_specs_have_paper_stats(self):
        for key in dataset_names():
            assert key in PAPER_STATS
            v, e, davg = PAPER_STATS[key]
            assert v > 0 and e > 0 and davg > 0

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("XX")


class TestLoadedGraphs:
    def test_connected(self):
        for key in ("FB", "YT", "ROAD"):
            assert is_connected(load_dataset(key))

    def test_cached(self):
        assert load_dataset("FB") is load_dataset("FB")

    def test_relative_density_preserved(self):
        """PE and IN are the dense datasets, YT the sparsest (as in Table III)."""
        davg = {k: load_dataset(k).average_degree() for k in ("PE", "IN", "YT", "GW")}
        assert davg["PE"] > davg["GW"]
        assert davg["IN"] > davg["GW"]
        assert davg["YT"] < davg["GW"]

    def test_size_ordering_of_extremes(self):
        assert load_dataset("FB").n < load_dataset("YT").n

    def test_road_is_low_degree(self):
        road = load_dataset("ROAD")
        assert road.average_degree() < 5


class TestQueryWorkload:
    def test_deterministic(self):
        g = load_dataset("FB")
        assert random_query_pairs(g, 50, seed=1) == random_query_pairs(g, 50, seed=1)

    def test_count_and_range(self):
        g = load_dataset("FB")
        pairs = random_query_pairs(g, 25, seed=2)
        assert len(pairs) == 25
        assert all(0 <= s < g.n and 0 <= t < g.n for s, t in pairs)
