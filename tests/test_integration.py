"""End-to-end integration tests crossing subsystem boundaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications import enumerate_shortest_paths, top_k_nearest
from repro.baselines import BidirectionalBFSCounter
from repro.core import CompactLabelIndex, DynamicSPCIndex, PSPCIndex, audit_full
from repro.graph import barabasi_albert, graph_stats, grid_road_network
from repro.graph.io import read_edge_list, write_edge_list
from repro.ordering import hybrid_order
from repro.reduction import ReducedSPCIndex


class TestFullLifecycle:
    """Generate -> persist -> reload -> order -> build -> reduce -> query."""

    def test_social_pipeline(self, tmp_path):
        graph = barabasi_albert(250, 3, seed=41)
        path = tmp_path / "social.txt"
        write_edge_list(graph, path, header="integration fixture")
        reloaded = read_edge_list(path, relabel=False)
        assert reloaded == graph

        index = PSPCIndex.build(reloaded, ordering="degree", num_landmarks=25)
        audit_full(index.labels, reloaded, query_samples=100)

        compact = CompactLabelIndex.from_index(index.labels)
        reduced = ReducedSPCIndex.build(reloaded)
        oracle = BidirectionalBFSCounter(reloaded)
        rng = np.random.default_rng(2)
        for _ in range(60):
            s, t = (int(x) for x in rng.integers(reloaded.n, size=2))
            expected = oracle.query(s, t)
            assert index.query(s, t) == expected
            assert compact.query(s, t) == expected
            assert reduced.query(s, t).count == expected.count

    def test_road_pipeline(self):
        graph = grid_road_network(12, 12, extra_edges=15, seed=2)
        stats = graph_stats(graph, name="road")
        assert stats.components == 1

        order = hybrid_order(graph, delta=5)
        index = PSPCIndex.build(graph, ordering=order)

        # route planning: enumerate actual routes behind the counts
        candidates = list(range(0, graph.n, 13))
        best = top_k_nearest(index, 0, candidates, k=3)
        assert best[0].vertex == 0
        target = best[-1].vertex
        routes = list(enumerate_shortest_paths(graph, index, 0, target))
        assert len(routes) == index.spc(0, target)

    def test_dynamic_world(self):
        """A living graph: updates, queries and rebuilds interleaved."""
        graph = barabasi_albert(120, 2, seed=43)
        dyn = DynamicSPCIndex(graph, rebuild_threshold=3, ordering="degree")
        oracle_pairs = [(0, 119), (5, 80), (33, 77)]

        baseline = {pair: dyn.query(*pair) for pair in oracle_pairs}
        dyn.add_edge(0, 119)
        assert dyn.distance(0, 119) == 1
        dyn.remove_edge(0, 119)
        for pair in oracle_pairs:
            restored = dyn.query(*pair)
            assert (restored.dist, restored.count) == (
                baseline[pair].dist,
                baseline[pair].count,
            )

    def test_paper_defaults_end_to_end(self):
        """The paper's headline configuration on one stand-in dataset."""
        from repro.experiments.datasets import load_dataset, random_query_pairs

        graph = load_dataset("FB")
        hp = PSPCIndex.build(graph, builder="hpspc")
        ps = PSPCIndex.build(graph, builder="pspc", num_landmarks=100, threads=2)
        assert hp.labels == ps.labels
        pairs = random_query_pairs(graph, 50, seed=3)
        for s, t in pairs:
            assert hp.query(s, t) == ps.query(s, t)
