"""Unit tests for the PSPCIndex facade (build/query/save/verify)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.index import BuildConfig, PSPCIndex
from repro.errors import IndexBuildError, QueryError
from repro.graph.generators import barabasi_albert
from repro.graph.traversal import spc_pair
from repro.ordering.degree import degree_order


class TestBuild:
    def test_default_build(self, social_graph):
        index = PSPCIndex.build(social_graph)
        assert index.n == social_graph.n
        assert index.config.builder == "pspc"
        assert index.config.ordering == "degree"

    def test_named_orderings(self, social_graph):
        for name in ("degree", "hybrid"):
            index = PSPCIndex.build(social_graph, ordering=name)
            assert index.config.ordering == name
            index.verify_against_bfs(samples=10)

    def test_explicit_order_object(self, social_graph):
        order = degree_order(social_graph)
        index = PSPCIndex.build(social_graph, ordering=order)
        assert index.order is order

    def test_hpspc_builder(self, social_graph):
        a = PSPCIndex.build(social_graph, builder="hpspc")
        b = PSPCIndex.build(social_graph, builder="pspc")
        assert a.labels == b.labels

    def test_unknown_builder_rejected(self, social_graph):
        with pytest.raises(IndexBuildError):
            PSPCIndex.build(social_graph, builder="magic")

    def test_threads_build_same_index(self, social_graph):
        single = PSPCIndex.build(social_graph, threads=1)
        multi = PSPCIndex.build(social_graph, threads=4)
        assert single.labels == multi.labels

    def test_order_phase_timed(self, social_graph):
        index = PSPCIndex.build(social_graph)
        assert index.stats.phase("order") >= 0.0
        assert index.stats.phase("construction") > 0.0


class TestQueryApi:
    @pytest.fixture
    def index(self, diamond):
        return PSPCIndex.build(diamond)

    def test_query_result(self, index):
        result = index.query(0, 3)
        assert (result.dist, result.count) == (2, 2)

    def test_spc_and_distance_shortcuts(self, index):
        assert index.spc(0, 3) == 2
        assert index.distance(0, 3) == 2

    def test_batch(self, index):
        results = index.query_batch([(0, 1), (0, 3)])
        assert [r.count for r in results] == [1, 2]

    def test_batch_costs(self, index):
        costs = index.query_batch_costs([(0, 3)])
        assert costs[0] >= 1

    def test_label_view(self, index):
        entries = index.label(0)
        assert any(e.dist == 0 and e.count == 1 for e in entries)

    def test_size_helpers(self, index):
        assert index.total_entries() > 0
        assert index.size_mb() > 0.0

    def test_repr(self, index):
        assert "PSPCIndex" in repr(index)


class TestVerification:
    def test_verify_passes_on_correct_index(self, social_graph):
        PSPCIndex.build(social_graph).verify_against_bfs(samples=30)

    def test_verify_detects_corruption_compact_store(self, social_graph):
        index = PSPCIndex.build(social_graph)
        assert index.store.kind == "compact"
        # corrupt one non-self count in the serving arrays
        nonself = np.flatnonzero(index.store.dists > 0)
        index.store.counts[nonself[0]] += 7
        with pytest.raises(QueryError):
            index.verify_against_bfs(samples=200)

    def test_verify_detects_corruption_tuple_store(self, social_graph):
        index = PSPCIndex.build(social_graph, store="tuple")
        assert index.store.kind == "tuple"
        # corrupt one non-self count
        for v, lst in enumerate(index.labels.entries):
            for i, (h, d, c) in enumerate(lst):
                if d > 0:
                    lst[i] = (h, d, c + 7)
                    break
            else:
                continue
            break
        with pytest.raises(QueryError):
            index.verify_against_bfs(samples=200)

    def test_verify_requires_graph(self, social_graph, tmp_path):
        index = PSPCIndex.build(social_graph)
        index.save(tmp_path / "idx.pkl")
        loaded = PSPCIndex.load(tmp_path / "idx.pkl")
        with pytest.raises(QueryError):
            loaded.verify_against_bfs()


class TestPersistence:
    def test_round_trip_preserves_answers(self, social_graph, tmp_path):
        index = PSPCIndex.build(social_graph, num_landmarks=8)
        path = tmp_path / "idx.pkl"
        index.save(path)
        loaded = PSPCIndex.load(path)
        assert loaded.labels == index.labels
        assert loaded.config == index.config
        rng = np.random.default_rng(1)
        for _ in range(25):
            s, t = (int(x) for x in rng.integers(social_graph.n, size=2))
            assert loaded.query(s, t) == index.query(s, t)

    def test_loaded_index_answers_match_bfs(self, tmp_path):
        graph = barabasi_albert(80, 2, seed=9)
        PSPCIndex.build(graph).save(tmp_path / "i.pkl")
        loaded = PSPCIndex.load(tmp_path / "i.pkl")
        for s in range(0, 80, 7):
            for t in range(0, 80, 11):
                result = loaded.query(s, t)
                assert (result.dist, result.count) == spc_pair(graph, s, t)
