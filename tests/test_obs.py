"""Observability layer: tracing, build profiling, inspection UX.

Covers the PR-9 acceptance contracts end to end:

* trace-id propagation — HTTP header → async service → pool pipes →
  response header, including the degraded in-process fallback;
* constant-memory ring buffers, deterministic sampling, slow-query log;
* profiler on/off bit-identity for every engine, plus the ``.npz``
  meta round-trip of ``BuildStats.profile``;
* latency-histogram quantile edge cases and the /metrics span/pending
  series;
* the shared ``render_rows`` renderer behind ``repro query --format``
  and ``explain_pairs`` behind ``--explain``.

Pools spawn processes — every pool is constructed inside a test function
(never at import time) so the spawn re-import of ``__main__`` stays safe.
"""

from __future__ import annotations

import asyncio
import json
import logging

import pytest

from repro.core.index import PSPCIndex
from repro.devtools.fmt import render_rows
from repro.errors import LintError, ReproError
from repro.graph.generators import barabasi_albert, path_graph
from repro.obs.explain import explain_pairs
from repro.obs.profile import BuildProfiler, render_profile
from repro.obs.trace import SPAN_NAMES, TraceContext, Tracer, new_trace_id
from repro.serve import AsyncQueryService, ShmIndexSegment, WorkerPool
from repro.serve.metrics import LatencyHistogram, render_prometheus


@pytest.fixture(scope="module")
def obs_index() -> PSPCIndex:
    """One shared small index for the process-spawning tests."""
    return PSPCIndex.build(barabasi_albert(150, 3, seed=11), num_landmarks=10)


# ----------------------------------------------------------------------
# Tracer core
# ----------------------------------------------------------------------
class TestTracer:
    def test_minted_ids_are_16_hex_and_unique(self):
        tracer = Tracer()
        ids = {tracer.new_trace(0, 1).trace_id for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)
        assert len(new_trace_id()) == 16

    def test_supplied_id_is_honoured(self):
        tracer = Tracer()
        ctx = tracer.new_trace(3, 4, trace_id="deadbeefdeadbeef")
        assert ctx.trace_id == "deadbeefdeadbeef"

    def test_finish_renders_spans_and_annotations(self):
        tracer = Tracer()
        ctx = tracer.new_trace(1, 2)
        ctx.span("kernel", 0.002)
        ctx.span("kernel", 0.001)  # accumulates
        ctx.annotate(batch=8, flush="full")
        tracer.finish(ctx)
        (record,) = tracer.traces()
        assert record["trace_id"] == ctx.trace_id
        assert (record["s"], record["t"], record["status"]) == (1, 2, "ok")
        assert record["spans_ms"]["kernel"] == pytest.approx(3.0, rel=0.01)
        assert record["batch"] == 8 and record["flush"] == "full"
        assert record["total_ms"] >= 0.0
        assert "T" in record["ts"]  # ISO wall-clock stamp
        assert json.dumps(record)  # JSON-serialisable for /debug/trace

    def test_ring_is_constant_memory(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.finish(tracer.new_trace(i, i + 1))
        records = tracer.traces()
        assert len(records) == 4
        assert [r["s"] for r in records] == [6, 7, 8, 9]  # oldest evicted
        assert tracer.finished == 10

    def test_traces_filter_by_id(self):
        tracer = Tracer()
        ctx = tracer.new_trace(5, 6, trace_id="aa" * 8)
        tracer.finish(ctx)
        tracer.finish(tracer.new_trace(7, 8))
        assert [r["s"] for r in tracer.traces("aa" * 8)] == [5]
        assert tracer.traces("nope") == []

    def test_sampling_is_deterministic(self):
        tracer = Tracer(sample=4)
        decisions = [tracer.sampled() for _ in range(12)]
        assert decisions == [True, False, False, False] * 3
        assert all(Tracer(sample=1).sampled() for _ in range(5))

    def test_invalid_configuration_raises(self):
        with pytest.raises(ReproError):
            Tracer(capacity=0)
        with pytest.raises(ReproError):
            Tracer(sample=0)

    def test_slow_query_log_is_structured_json(self, caplog):
        tracer = Tracer(slow_ms=0.0001)
        ctx = tracer.new_trace(1, 2)
        ctx.span("kernel", 0.05)
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            import time

            time.sleep(0.001)  # ensure total exceeds the threshold
            tracer.finish(ctx)
        assert tracer.slow == 1
        payload = json.loads(caplog.records[-1].message)
        assert payload["event"] == "slow_query"
        assert payload["trace_id"] == ctx.trace_id

    def test_event_ring(self):
        tracer = Tracer(events_capacity=2)
        tracer.event("worker_respawn", worker=0, why="crash")
        tracer.event("fallback_shard", pairs=16)
        tracer.event("worker_retired", worker=1, why="quarantine")
        events = tracer.events()
        assert [e["kind"] for e in events] == ["fallback_shard", "worker_retired"]
        assert events[1]["worker"] == 1

    def test_snapshot_span_aggregates(self):
        tracer = Tracer()
        for ms in (1.0, 2.0, 3.0):
            ctx = tracer.new_trace(0, 1)
            ctx.span("kernel", ms / 1e3)
            tracer.finish(ctx)
        snap = tracer.snapshot()
        assert snap["enabled"] and snap["finished"] == 3
        kernel = snap["spans"]["kernel"]
        assert kernel["count"] == 3
        assert kernel["mean_ms"] == pytest.approx(2.0, rel=0.01)
        assert kernel["p50_ms"] == pytest.approx(2.0, rel=0.01)


# ----------------------------------------------------------------------
# LatencyHistogram edge cases + /metrics series
# ----------------------------------------------------------------------
class TestLatencyHistogram:
    def test_empty_histogram_reports_zero(self):
        hist = LatencyHistogram()
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(0.99) == 0.0
        snap = hist.snapshot()
        assert (snap["count"], snap["mean_ms"], snap["p99_ms"]) == (0, 0.0, 0.0)

    def test_single_observation_is_exact(self):
        hist = LatencyHistogram()
        hist.observe(0.00042)
        assert hist.quantile(0.5) == 0.00042
        assert hist.quantile(0.99) == 0.00042
        assert hist.min_seconds == hist.max_seconds == 0.00042

    def test_quantiles_clamped_to_observed_range(self):
        hist = LatencyHistogram()
        hist.observe(0.0011)
        hist.observe(0.0012)
        # bucket upper bound is 2.5ms, but nothing above 1.2ms was seen
        assert hist.quantile(0.99) <= hist.max_seconds

    def test_bucketing_boundaries_and_overflow(self):
        hist = LatencyHistogram()
        hist.observe(hist.BOUNDS[0])  # exactly on a bound: <= bound bucket
        assert hist.buckets[0] == 1
        hist.observe(hist.BOUNDS[-1] * 2)  # beyond the last bound
        assert hist.overflow == 1
        assert hist.count == 2

    def test_prometheus_exposes_pending_and_span_series(self, obs_index):
        with WorkerPool(obs_index, workers=1) as pool:
            pool.query_batch([(0, 5)])
            stats = {"pool": pool.stats(), "queries": 1, "batches": 1}
            for row in stats["pool"]["per_worker"]:
                assert "pending" in row  # queue-depth gauge source
        tracer = Tracer()
        ctx = tracer.new_trace(0, 5)
        ctx.span("kernel", 0.001)
        tracer.finish(ctx)
        text = render_prometheus(stats, span_summaries=tracer.span_summaries)
        assert 'repro_worker_pending_shards{worker="0"} 0' in text
        assert 'repro_span_latency_seconds_sum{span="kernel"}' in text
        assert 'repro_span_latency_seconds_count{span="total"} 1' in text


# ----------------------------------------------------------------------
# trace-id propagation: service → pool pipes → fallback → HTTP
# ----------------------------------------------------------------------
class TestTracePropagation:
    def test_sync_service_traces_full_span_set(self, obs_index):
        from repro.api import QueryService

        tracer = Tracer()
        with QueryService(obs_index, batch_size=4, cache_size=8, tracer=tracer) as svc:
            handles = [svc.submit(i, i + 5, trace_id=f"{i:016x}") for i in range(4)]
            results = [h.result(timeout=10) for h in handles]
        assert [r.s for r in results] == list(range(4))
        records = tracer.traces()
        assert [r["trace_id"] for r in records] == [f"{i:016x}" for i in range(4)]
        for record in records:
            for span in ("admission_wait", "kernel", "reassembly", "flush", "total"):
                assert span in record["spans_ms"], span
            assert record["cache"] == "miss"

    def test_sync_cache_hit_short_circuits(self, obs_index):
        from repro.api import QueryService

        tracer = Tracer()
        with QueryService(obs_index, batch_size=1, cache_size=8, tracer=tracer) as svc:
            svc.submit(2, 9).result(timeout=10)
            svc.submit(2, 9).result(timeout=10)
        hit = tracer.traces()[-1]
        assert hit["cache"] == "hit"
        assert "kernel" not in hit["spans_ms"]  # never reached a flush

    def test_trace_id_rides_pool_pipes(self, obs_index):
        """A caller-supplied id crosses the worker pipe and comes back."""
        segment = ShmIndexSegment.publish(obs_index)
        try:
            tracer = Tracer()

            async def main():
                pool = WorkerPool(segment=segment, workers=2)
                try:
                    async with AsyncQueryService(
                        pool=pool, batch_size=4, max_wait=0.001, tracer=tracer
                    ) as svc:
                        return await asyncio.gather(
                            svc.submit(0, 9, trace_id="deadbeefdeadbeef"),
                            svc.submit(1, 8),
                            svc.submit(2, 7),
                            svc.submit(3, 6),
                        )
                finally:
                    pool.close()

            results = asyncio.run(main())
            assert [r.s for r in results] == [0, 1, 2, 3]
            (named,) = tracer.traces("deadbeefdeadbeef")
            # the batch representative carries per-shard attribution rows
            assert named["shards"], named
            for row in named["shards"]:
                assert row["source"] == "worker" and row["worker"] >= 0
                assert row["kernel_ms"] >= 0.0 and row["pipe_ms"] >= 0.0
            for record in tracer.traces():
                for span in ("kernel", "pipe", "flush", "total"):
                    assert span in record["spans_ms"], (record, span)
        finally:
            segment.close()
            segment.unlink()

    def test_degraded_fallback_still_traces(self, obs_index):
        """All workers retired: the in-process fallback answers, traced."""
        segment = ShmIndexSegment.publish(obs_index)
        try:
            tracer = Tracer()
            pool = WorkerPool(segment=segment, workers=1)
            pool.tracer = tracer
            try:
                for slot in pool._slots:
                    pool._retire(slot, "test-induced")
                assert pool.health() == "critical"
                ctx = tracer.new_trace(0, 9)
                results = pool.query_batch([(0, 9), (1, 8)], trace=ctx)
                tracer.finish(ctx)
            finally:
                pool.close()
            assert [r.count for r in results] == [
                r.count for r in obs_index.query_batch([(0, 9), (1, 8)])
            ]
            (record,) = tracer.traces()
            assert all(row["source"] == "fallback" for row in record["shards"])
            assert "kernel" in record["spans_ms"]
            kinds = {e["kind"] for e in tracer.events()}
            assert "worker_retired" in kinds and "fallback_shard" in kinds
        finally:
            segment.close()
            segment.unlink()

    def test_http_header_round_trip(self, obs_index):
        """X-Repro-Trace-Id: request header → service → response header →
        /debug/trace lookup, plus a minted id when the client sends none."""
        from repro.serve.http import serve

        async def request(port, path, headers=""):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                f"GET {path} HTTP/1.1\r\nHost: x\r\n{headers}"
                "Content-Length: 0\r\n\r\n".encode()
                if isinstance(path, str)
                else path
            )
            await writer.drain()
            status = int((await reader.readline()).split()[1])
            response_headers = {}
            while True:
                line = (await reader.readline()).decode().strip()
                if not line:
                    break
                key, _, value = line.partition(":")
                response_headers[key.strip().lower()] = value.strip()
            payload = json.loads(await reader.read())
            writer.close()
            await writer.wait_closed()
            return status, response_headers, payload

        async def main():
            tracer = Tracer()
            service = AsyncQueryService(obs_index, batch_size=8, tracer=tracer)
            ready: asyncio.Future = asyncio.get_running_loop().create_future()
            stop = asyncio.Event()
            task = asyncio.ensure_future(
                serve(service, "127.0.0.1", 0, ready=ready, stop=stop)
            )
            _, port = await asyncio.wait_for(ready, timeout=10)

            wanted = "feedface" * 2
            status, headers, _ = await request(
                port, "/query?s=0&t=5", f"X-Repro-Trace-Id: {wanted}\r\n"
            )
            assert status == 200
            assert headers["x-repro-trace-id"] == wanted

            status, headers, _ = await request(port, "/query?s=1&t=6")
            assert status == 200
            minted = headers["x-repro-trace-id"]
            assert len(minted) == 16 and minted != wanted

            status, _, report = await request(port, f"/debug/trace?id={wanted}")
            assert status == 200 and report["enabled"]
            (record,) = report["traces"]
            assert record["trace_id"] == wanted
            for span in ("admission_wait", "kernel", "flush", "total"):
                assert span in record["spans_ms"], span
            # the minted id is also followable
            status, _, report = await request(port, f"/debug/trace?id={minted}")
            assert [r["trace_id"] for r in report["traces"]] == [minted]

            status, _, events = await request(port, "/debug/events")
            assert status == 200 and events["enabled"]

            stop.set()
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(main())

    def test_debug_endpoints_without_tracer(self, obs_index):
        from repro.serve.http import serve

        async def main():
            service = AsyncQueryService(obs_index, batch_size=8)
            ready: asyncio.Future = asyncio.get_running_loop().create_future()
            stop = asyncio.Event()
            task = asyncio.ensure_future(
                serve(service, "127.0.0.1", 0, ready=ready, stop=stop)
            )
            _, port = await asyncio.wait_for(ready, timeout=10)
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"GET /debug/trace HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
            await writer.drain()
            status = int((await reader.readline()).split()[1])
            while (await reader.readline()).strip():
                pass
            payload = json.loads(await reader.read())
            writer.close()
            await writer.wait_closed()
            assert status == 200
            assert payload == {"enabled": False, "traces": []}
            stop.set()
            await asyncio.wait_for(task, timeout=10)

        asyncio.run(main())

    def test_sampled_service_still_traces_explicit_ids(self, obs_index):
        from repro.api import QueryService

        tracer = Tracer(sample=1000)  # effectively off for anonymous traffic
        with QueryService(obs_index, batch_size=2, tracer=tracer) as svc:
            svc.submit(0, 5).result(timeout=10)  # request 0 samples in
            svc.submit(1, 6).result(timeout=10)  # sampled out
            svc.submit(2, 7, trace_id="ff" * 8).result(timeout=10)  # forced
        ids = [r["trace_id"] for r in tracer.traces()]
        assert "ff" * 8 in ids
        assert len(ids) == 2  # anonymous request 1 was thinned out


# ----------------------------------------------------------------------
# build profiling: bit-identity, meta round-trip, rendering
# ----------------------------------------------------------------------
class TestBuildProfiling:
    def test_profiler_accumulates_phases_and_iterations(self):
        profiler = BuildProfiler()
        profiler.begin_iteration(1)
        profiler.lap("pull_merge")
        profiler.lap("query_rule")
        profiler.end_iteration(labels=42)
        profiler.begin_iteration(2)
        profiler.lap("pull_merge")
        profiler.end_iteration(labels=7)
        profile = profiler.as_profile()
        assert set(profile["engine_phases"]) == {"pull_merge", "query_rule"}
        assert [row["distance"] for row in profile["iterations"]] == [1, 2]
        assert [row["labels"] for row in profile["iterations"]] == [42, 7]

    @pytest.mark.parametrize("engine", ["vectorized", "parallel"])
    def test_profile_on_is_bit_identical(self, engine):
        graph = barabasi_albert(80, 3, seed=4)
        plain = PSPCIndex.build(graph, engine=engine, workers=2)
        profiled = PSPCIndex.build(graph, engine=engine, workers=2, profile=True)
        pairs = [(i, (i * 7 + 3) % graph.n) for i in range(40)]
        assert profiled.query_batch(pairs) == plain.query_batch(pairs)
        assert not plain.stats.profile
        assert profiled.stats.profile["engine_phases"]
        assert profiled.stats.profile["iterations"]

    def test_directed_profile_on_is_bit_identical(self):
        import numpy as np

        from repro.digraph.digraph import DiGraph
        from repro.digraph.index import DirectedSPCIndex

        rng = np.random.default_rng(9)
        edges = [(int(u), int(v)) for u, v in rng.integers(50, size=(120, 2)) if u != v]
        graph = DiGraph(50, edges)
        plain = DirectedSPCIndex.build(graph)
        profiled = DirectedSPCIndex.build(graph, profile=True)
        pairs = [(i % 50, (i * 3 + 1) % 50) for i in range(40)]
        assert profiled.query_batch(pairs) == plain.query_batch(pairs)
        assert profiled.stats.profile["engine_phases"]

    def test_profile_round_trips_through_npz(self, tmp_path):
        graph = barabasi_albert(60, 3, seed=2)
        index = PSPCIndex.build(graph, profile=True)
        path = tmp_path / "profiled.npz"
        index.save(path)
        loaded = PSPCIndex.load(path)
        assert loaded.stats.profile == index.stats.profile
        assert loaded.stats.profile["iterations"]

    def test_phase_sum_covers_build_time(self):
        """The rendered coverage claim: profiled phases ≈ the whole build."""
        graph = barabasi_albert(300, 3, seed=6)
        index = PSPCIndex.build(graph, profile=True)
        stats = index.stats
        covered = sum(
            seconds
            for name, seconds in stats.phase_seconds.items()
            if name != "construction"
        ) + sum(stats.profile["engine_phases"].values())
        assert covered <= stats.total_seconds * 1.05
        assert covered >= stats.total_seconds * 0.5

    def test_render_profile_output(self):
        graph = barabasi_albert(60, 3, seed=2)
        index = PSPCIndex.build(graph, profile=True)
        text = render_profile(index.stats)
        assert text.startswith("build profile")
        assert "pull_merge" in text
        assert "iterations" in text and "coverage" in text
        # renders without a profile too (plain build)
        plain = PSPCIndex.build(graph)
        assert render_profile(plain.stats).startswith("build profile")


# ----------------------------------------------------------------------
# query inspection UX: render_rows + explain_pairs
# ----------------------------------------------------------------------
class TestInspectionUX:
    ROWS = [
        {"s": 0, "t": 3, "dist": 3, "count": 1},
        {"s": 1, "t": 2, "dist": 1, "count": 1},
    ]

    def test_render_rows_table(self):
        text = render_rows(self.ROWS, "table", title="SPC queries")
        lines = text.splitlines()
        assert lines[0] == "SPC queries"
        assert lines[1].split() == ["s", "t", "dist", "count"]
        assert lines[3].split() == ["0", "3", "3", "1"]

    def test_render_rows_csv(self):
        text = render_rows(self.ROWS, "csv")
        assert text.splitlines() == ["s,t,dist,count", "0,3,3,1", "1,2,1,1"]

    def test_render_rows_json(self):
        assert json.loads(render_rows(self.ROWS, "json")) == self.ROWS

    def test_render_rows_union_columns_and_empty(self):
        rows = [{"a": 1}, {"b": 2}]
        csv_text = render_rows(rows, "csv")
        assert csv_text.splitlines()[0] == "a,b"
        assert render_rows([], "table", title="empty") == "empty: clean"

    def test_render_rows_unknown_format(self):
        with pytest.raises(LintError):
            render_rows(self.ROWS, "yaml")

    def test_explain_pairs_on_a_path(self):
        index = PSPCIndex.build(path_graph(6))
        (row,) = explain_pairs(index, [(0, 5)])
        assert (row["s"], row["t"], row["dist"], row["count"]) == (0, 5, 5, 1)
        assert row["label_s"] >= 1 and row["label_t"] >= 1
        # the meeting hub is the highest-ranked vertex on the path
        assert isinstance(row["hub"], int) and 0 <= row["hub"] <= 5
        assert json.dumps(row)  # numpy scalars would fail here

    def test_explain_pairs_unreachable(self):
        from repro.graph.graph import Graph

        index = PSPCIndex.build(Graph(4, [(0, 1), (2, 3)]))
        (row,) = explain_pairs(index, [(0, 3)])
        assert row["dist"] == -1 and row["count"] == 0
        assert row["hub"] is None


# ----------------------------------------------------------------------
# span taxonomy stays closed
# ----------------------------------------------------------------------
def test_span_names_cover_the_service_spans(obs_index):
    """Every span a service records is in SPAN_NAMES (docs stay truthful)."""
    from repro.api import QueryService

    tracer = Tracer()
    with QueryService(obs_index, batch_size=2, cache_size=4, tracer=tracer) as svc:
        svc.submit(0, 5).result(timeout=10)
        svc.submit(0, 5).result(timeout=10)
        svc.submit(1, 6).result(timeout=10)
    recorded = set()
    for record in tracer.traces():
        recorded |= set(record["spans_ms"])
    assert recorded <= set(SPAN_NAMES)
    assert {"total", "kernel", "cache_lookup"} <= recorded


def test_trace_context_slots():
    ctx = TraceContext("ab" * 8, 1, 2)
    with pytest.raises(AttributeError):
        ctx.arbitrary = 1  # constant-memory contract: no __dict__
