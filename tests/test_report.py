"""Unit tests for the Markdown report generator."""

from __future__ import annotations

import json

import pytest

from repro.errors import DatasetError
from repro.experiments.report import generate_report, load_results, rows_to_markdown


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "fig5_indexing_time.json").write_text(
        json.dumps([{"dataset": "FB", "hpspc_s": 1.0, "pspc_s": 0.9}])
    )
    (tmp_path / "custom_experiment.json").write_text(json.dumps([{"x": 1}]))
    (tmp_path / "notes.txt").write_text("ignored")
    return tmp_path


class TestLoadResults:
    def test_loads_json_files_only(self, results_dir):
        results = load_results(results_dir)
        assert set(results) == {"fig5_indexing_time", "custom_experiment"}

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_results(tmp_path / "nope")

    def test_corrupt_json_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text("{oops")
        with pytest.raises(DatasetError):
            load_results(tmp_path)


class TestMarkdown:
    def test_table_shape(self):
        md = rows_to_markdown([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | x |"
        assert len(lines) == 4

    def test_empty_rows(self):
        assert "(no rows)" in rows_to_markdown([])


class TestGenerateReport:
    def test_known_experiments_titled_and_ordered_first(self, results_dir):
        report = generate_report(results_dir)
        assert "Fig. 5 — indexing time (s)" in report
        assert "custom_experiment" in report
        assert report.index("Fig. 5") < report.index("custom_experiment")

    def test_empty_directory_message(self, tmp_path):
        report = generate_report(tmp_path)
        assert "No recorded results" in report

    def test_report_is_markdown_table(self, results_dir):
        report = generate_report(results_dir)
        assert "| dataset | hpspc_s | pspc_s |" in report
