"""Cross-engine equivalence suite for the vectorized build path.

The repository's central invariant, extended to the new engine: for a fixed
total order the vectorized frontier-kernel builder must produce the
bit-identical canonical ESPC index the reference per-vertex loops produce —
on every bundled generator, under both propagation paradigms, with and
without the landmark filter, on vertex-weighted and reduction-derived
graphs, and across the int64-overflow fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fastbuild import ENGINES, build_pspc_vectorized
from repro.core.index import PSPCIndex
from repro.core.pspc import build_pspc
from repro.core.store import freeze_labels
from repro.errors import IndexBuildError
from repro.graph.generators import (
    barabasi_albert,
    grid_road_network,
    powerlaw_cluster,
    watts_strogatz,
)
from repro.graph.graph import Graph
from repro.graph.traversal import spc_pair
from repro.ordering.degree import degree_order
from repro.reduction.pipeline import ReducedSPCIndex

#: One small instance per bundled generator family (mirrors test_store).
GENERATORS = {
    "barabasi_albert": lambda: barabasi_albert(120, 3, seed=5),
    "watts_strogatz": lambda: watts_strogatz(90, 6, 0.2, seed=6),
    "powerlaw_cluster": lambda: powerlaw_cluster(110, 3, 0.5, seed=7),
    "grid_road_network": lambda: grid_road_network(9, 9, extra_edges=8, seed=8),
}


def diamond_chain(k: int) -> tuple[Graph, int]:
    """``k`` diamonds in series: ``spc(0, end) == 2**k`` (overflow driver)."""
    edges = []
    prev = 0
    next_id = 1
    for _ in range(k):
        a, b, end = next_id, next_id + 1, next_id + 2
        next_id += 3
        edges += [(prev, a), (prev, b), (a, end), (b, end)]
        prev = end
    return Graph(next_id, edges), prev


@pytest.mark.parametrize("num_landmarks", [0, 4], ids=["nolm", "lm4"])
@pytest.mark.parametrize("paradigm", ["pull", "push"])
@pytest.mark.parametrize("name", sorted(GENERATORS))
class TestCrossEngineEquivalence:
    def test_identical_index_and_counters(self, name, paradigm, num_landmarks):
        graph = GENERATORS[name]()
        order = degree_order(graph)
        ref, ref_stats = build_pspc(
            graph, order, paradigm=paradigm, num_landmarks=num_landmarks
        )
        vec, vec_stats = build_pspc_vectorized(
            graph, order, paradigm=paradigm, num_landmarks=num_landmarks
        )
        assert vec == freeze_labels(ref)
        # pruning-rule activity is counted identically, not just the output
        assert vec_stats.pruned_by_rank == ref_stats.pruned_by_rank
        assert vec_stats.pruned_by_query == ref_stats.pruned_by_query
        assert vec_stats.landmark_hits == ref_stats.landmark_hits
        assert vec_stats.iteration_labels == ref_stats.iteration_labels
        assert vec_stats.total_entries == ref_stats.total_entries


class TestWorkAccounting:
    def test_pull_work_units_match_reference_exactly(self, social_graph):
        order = degree_order(social_graph)
        _, ref_stats = build_pspc(social_graph, order, paradigm="pull")
        _, vec_stats = build_pspc_vectorized(social_graph, order, paradigm="pull")
        assert len(vec_stats.iteration_costs) == len(ref_stats.iteration_costs)
        for vec_costs, ref_costs in zip(
            vec_stats.iteration_costs, ref_stats.iteration_costs
        ):
            assert np.array_equal(vec_costs, ref_costs)

    def test_landmarks_reduce_recorded_work(self, social_graph):
        order = degree_order(social_graph)
        _, plain = build_pspc_vectorized(social_graph, order, num_landmarks=0)
        _, filtered = build_pspc_vectorized(social_graph, order, num_landmarks=15)
        assert filtered.total_work < plain.total_work

    def test_record_work_optional(self, social_graph):
        order = degree_order(social_graph)
        _, stats = build_pspc_vectorized(social_graph, order, record_work=False)
        assert stats.iteration_costs == []
        assert stats.iteration_labels

    def test_engine_tagged(self, social_graph):
        order = degree_order(social_graph)
        _, stats = build_pspc_vectorized(social_graph, order)
        assert stats.engine == "vectorized"
        _, stats = build_pspc(social_graph, order)
        assert stats.engine == "reference"


class TestWeightedAndReduced:
    def test_weighted_graph_identical(self):
        graph = Graph(
            5,
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)],
            vertex_weights=[1, 2, 1, 3, 1],
        )
        order = degree_order(graph)
        ref, _ = build_pspc(graph, order)
        vec, _ = build_pspc_vectorized(graph, order)
        assert vec == freeze_labels(ref)

    def test_reduction_pipeline_identical_answers(self, social_graph):
        vec = ReducedSPCIndex.build(social_graph, engine="vectorized")
        ref = ReducedSPCIndex.build(social_graph, engine="reference")
        # the reduced core is vertex-weighted, exercising the factor path
        assert vec.index.labels == ref.index.labels
        rng = np.random.default_rng(23)
        for _ in range(50):
            s, t = (int(x) for x in rng.integers(social_graph.n, size=2))
            assert vec.query(s, t) == ref.query(s, t)

    def test_answers_match_bfs_ground_truth(self, road_graph):
        index = PSPCIndex.build(road_graph)  # vectorized default
        assert index.config.engine == "vectorized"
        for s in range(0, road_graph.n, 7):
            for t in range(0, road_graph.n, 11):
                result = index.query(s, t)
                assert (result.dist, result.count) == spc_pair(road_graph, s, t)


class TestOverflowFallback:
    def test_falls_back_to_reference_and_tuple_store(self):
        graph, end = diamond_chain(70)  # 2**70 shortest paths: beyond int64
        index = PSPCIndex.build(graph)
        assert index.store.kind == "tuple"
        assert index.stats.engine == "reference"  # fallback took over
        assert index.spc(0, end) == 2**70
        reference = PSPCIndex.build(graph, engine="reference", store="tuple")
        assert index.labels == reference.labels

    def test_no_fallback_below_the_guard(self):
        graph, end = diamond_chain(20)  # 2**20 fits comfortably
        index = PSPCIndex.build(graph)
        assert index.store.kind == "compact"
        assert index.stats.engine == "vectorized"
        assert index.spc(0, end) == 2**20


class TestFacade:
    def test_engine_choices_exposed_and_validated(self, social_graph):
        assert set(ENGINES) == {"vectorized", "reference", "parallel"}
        with pytest.raises(IndexBuildError):
            PSPCIndex.build(social_graph, engine="warp")

    def test_engine_recorded_in_config_and_round_tripped(self, social_graph, tmp_path):
        for engine in ENGINES:
            index = PSPCIndex.build(social_graph, engine=engine)
            assert index.config.engine == engine
            path = tmp_path / f"{engine}.npz"
            index.save(path)
            loaded = PSPCIndex.load(path)
            assert loaded.config.engine == engine
            assert loaded.stats.engine == index.stats.engine
            assert loaded.store == index.store

    def test_config_records_engine_that_ran(self, social_graph):
        # task-level parallelism only exists on the reference path, so
        # threads > 1 (or an explicit backend) selects and records it
        threaded = PSPCIndex.build(social_graph, threads=4)
        assert threaded.config.engine == "reference"
        assert threaded.stats.engine == "reference"
        # the sequential HP-SPC baseline has no engine concept at all
        hpspc = PSPCIndex.build(social_graph, builder="hpspc")
        assert hpspc.config.engine == ""
        assert hpspc.stats.engine == ""

    def test_pre_engine_file_does_not_claim_vectorized(self, social_graph, tmp_path):
        from repro.core import store as store_module

        path = tmp_path / "old.npz"
        PSPCIndex.build(social_graph, engine="reference").save(path)
        kind, arrays, meta = store_module.read_payload(path)
        del meta["config"]["engine"]  # simulate a pre-split file
        del meta["stats"]["engine"]
        store_module.write_payload(path, kind, arrays, meta=meta)
        loaded = PSPCIndex.load(path)
        assert loaded.config.engine == "reference"
        assert loaded.stats.engine == ""

    def test_vectorized_build_serves_compact_store_directly(self, social_graph):
        index = PSPCIndex.build(social_graph)
        assert index.store.kind == "compact"
        assert index.engine.kind == "compact"

    def test_tuple_store_requested_from_vectorized_build(self, social_graph):
        tuple_index = PSPCIndex.build(social_graph, store="tuple")
        compact_index = PSPCIndex.build(social_graph)
        assert tuple_index.store.kind == "tuple"
        assert tuple_index.labels == compact_index.store.to_label_index()

    def test_validation_mirrors_reference(self, social_graph, paper_order):
        order = degree_order(social_graph)
        with pytest.raises(IndexBuildError):
            build_pspc_vectorized(social_graph, order, paradigm="teleport")
        with pytest.raises(IndexBuildError):
            build_pspc_vectorized(social_graph, paper_order)
        with pytest.raises(IndexBuildError):
            build_pspc_vectorized(social_graph, order, max_iterations=1)

    def test_empty_and_trivial_graphs(self):
        for graph in (Graph(0, []), Graph(1, []), Graph(3, [])):
            order = degree_order(graph)
            vec, _ = build_pspc_vectorized(graph, order)
            ref, _ = build_pspc(graph, order)
            assert vec == freeze_labels(ref)
