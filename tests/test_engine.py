"""Tests for the QueryEngine dispatch layer and the vectorized batch kernel."""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.engine as engine_module
from repro.core.compact import CompactLabelIndex
from repro.core.engine import QueryEngine, query_batch_compact
from repro.core.index import PSPCIndex
from repro.core.queries import spc_query, spc_query_with_cost
from repro.errors import QueryError
from repro.graph.generators import barabasi_albert
from repro.graph.graph import Graph


@pytest.fixture
def built(social_graph):
    index = PSPCIndex.build(social_graph, store="tuple")
    compact = CompactLabelIndex.from_index(index.labels)
    return social_graph, index.labels, compact


class TestDispatch:
    def test_kind_property(self, built):
        _, labels, compact = built
        assert QueryEngine(labels).kind == "tuple"
        assert QueryEngine(compact).kind == "compact"

    def test_engines_agree_per_pair(self, built):
        graph, labels, compact = built
        tuple_engine = QueryEngine(labels)
        compact_engine = QueryEngine(compact)
        rng = np.random.default_rng(3)
        for _ in range(150):
            s, t = (int(x) for x in rng.integers(graph.n, size=2))
            assert tuple_engine.query(s, t) == compact_engine.query(s, t)

    def test_shortcuts(self, built):
        _, _, compact = built
        engine = QueryEngine(compact)
        result = engine.query(0, 5)
        assert engine.spc(0, 5) == result.count
        assert engine.distance(0, 5) == result.dist


class TestVectorizedBatch:
    def test_matches_tuple_kernel(self, built):
        graph, labels, compact = built
        rng = np.random.default_rng(5)
        pairs = [(int(a), int(b)) for a, b in rng.integers(graph.n, size=(500, 2))]
        expected = [spc_query(labels, s, t) for s, t in pairs]
        assert query_batch_compact(compact, pairs) == expected

    def test_crosses_chunk_boundaries(self, built, monkeypatch):
        graph, labels, compact = built
        monkeypatch.setattr(engine_module, "_BATCH_CHUNK", 7)
        rng = np.random.default_rng(6)
        pairs = [(int(a), int(b)) for a, b in rng.integers(graph.n, size=(40, 2))]
        expected = [spc_query(labels, s, t) for s, t in pairs]
        assert query_batch_compact(compact, pairs) == expected

    def test_identity_and_unreachable(self, two_components):
        index = PSPCIndex.build(two_components)
        results = index.query_batch([(1, 1), (0, 4), (0, 2)])
        assert (results[0].dist, results[0].count) == (0, 1)
        assert (results[1].dist, results[1].count) == (-1, 0)
        assert (results[2].dist, results[2].count) == (2, 1)

    def test_empty_batch(self, built):
        _, _, compact = built
        assert query_batch_compact(compact, []) == []

    def test_out_of_range_rejected(self, built):
        _, _, compact = built
        with pytest.raises(QueryError):
            query_batch_compact(compact, [(0, 10_000)])
        with pytest.raises(QueryError):
            query_batch_compact(compact, [(-1, 0)])

    def test_bad_shape_rejected(self, built):
        _, _, compact = built
        with pytest.raises(QueryError):
            query_batch_compact(compact, [(1, 2, 3)])

    def test_ndarray_input_accepted(self, built):
        graph, labels, compact = built
        pairs = np.array([[0, 5], [3, 9], [7, 7]])
        expected = [spc_query(labels, int(s), int(t)) for s, t in pairs]
        assert query_batch_compact(compact, pairs) == expected

    def test_weighted_graph_batch(self):
        g = Graph(3, [(0, 1), (1, 2)], vertex_weights=[1, 5, 1])
        index = PSPCIndex.build(g)
        assert index.store.kind == "compact"
        results = index.query_batch([(0, 2), (0, 1), (2, 2)])
        assert [r.count for r in results] == [5, 1, 1]

    def test_overflow_guard_falls_back(self, built, monkeypatch):
        _, labels, compact = built
        calls = {"per_pair": 0}
        original = CompactLabelIndex.query

        def counting_query(self, s, t):
            calls["per_pair"] += 1
            return original(self, s, t)

        monkeypatch.setattr(CompactLabelIndex, "query", counting_query)
        monkeypatch.setattr(engine_module, "_SAFE_LIMIT", 1)  # everything "unsafe"
        pairs = [(0, 5), (3, 9)]
        expected = [spc_query(labels, s, t) for s, t in pairs]
        assert query_batch_compact(compact, pairs) == expected
        assert calls["per_pair"] == len(pairs)


class TestCosts:
    def test_costs_match_tuple_kernel(self, built):
        graph, labels, compact = built
        rng = np.random.default_rng(9)
        pairs = [(int(a), int(b)) for a, b in rng.integers(graph.n, size=(100, 2))]
        expected = [spc_query_with_cost(labels, s, t)[1] for s, t in pairs]
        assert QueryEngine(compact).query_costs(pairs) == expected
        assert QueryEngine(labels).query_costs(pairs) == expected

    def test_costs_out_of_range(self, built):
        _, _, compact = built
        with pytest.raises(QueryError):
            QueryEngine(compact).query_costs([(0, 10_000)])


class TestFacadeIntegration:
    def test_default_serving_store_is_compact(self, social_graph):
        index = PSPCIndex.build(social_graph)
        assert index.store.kind == "compact"
        assert index.engine.kind == "compact"

    def test_all_entry_points_agree_with_tuple_build(self):
        graph = barabasi_albert(130, 3, seed=29)
        compact_index = PSPCIndex.build(graph)
        tuple_index = PSPCIndex.build(graph, store="tuple")
        rng = np.random.default_rng(31)
        pairs = [(int(a), int(b)) for a, b in rng.integers(graph.n, size=(200, 2))]
        assert compact_index.query_batch(pairs) == tuple_index.query_batch(pairs)
        for s, t in pairs[:50]:
            assert compact_index.query(s, t) == tuple_index.query(s, t)
            assert compact_index.spc(s, t) == tuple_index.spc(s, t)
            assert compact_index.distance(s, t) == tuple_index.distance(s, t)
