"""Reproduction of the paper's running example (Fig. 2, Table II, Example 1).

The graph is reconstructed from the figure and the published label index.
Our builders reproduce Table II *exactly*, entry for entry, including the
``(v7, 3, 2)`` entry on ``v10``.  The worked Example 1 in the text contains
arithmetic slips ("2 + 2 = 4 ... with a length of 4"); the true answer,
confirmed by exhaustive BFS, is SPC(v10, v7) = 4 at distance 3 — which is
the count the example ultimately reports.
"""

from __future__ import annotations

import pytest

from repro.core.hpspc import hpspc_index
from repro.core.pspc import pspc_index
from repro.core.queries import spc_query
from repro.graph.traversal import spc_pair

# the Table II reproduction exercises the deprecated raw-builder shims on
# purpose (their label lists ARE the published table); warning asserted in
# test_api.py
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

#: Table II, transcribed with vertices as 0-based ids (v_i -> i-1).
TABLE_II = {
    0: [(0, 0, 1)],
    1: [(0, 2, 2), (6, 2, 1), (3, 1, 1), (9, 1, 1), (1, 0, 1)],
    2: [(0, 1, 1), (6, 2, 1), (2, 0, 1)],
    3: [(0, 1, 1), (6, 1, 1), (3, 0, 1)],
    4: [(0, 1, 1), (6, 1, 1), (4, 0, 1)],
    5: [(0, 2, 1), (6, 1, 1), (2, 1, 1), (5, 0, 1)],
    6: [(0, 2, 2), (6, 0, 1)],
    7: [(0, 3, 3), (6, 1, 1), (9, 2, 1), (7, 0, 1)],
    8: [(0, 2, 1), (6, 2, 1), (3, 3, 1), (9, 1, 1), (7, 1, 1), (8, 0, 1)],
    9: [(0, 1, 1), (6, 3, 2), (3, 2, 1), (9, 0, 1)],
}


@pytest.fixture
def built(paper_graph, paper_order):
    return pspc_index(paper_graph, paper_order)


class TestTableII:
    def test_pspc_reproduces_every_label(self, built):
        for v, expected in TABLE_II.items():
            actual = sorted(
                (entry.hub, entry.dist, entry.count) for entry in built.label(v)
            )
            assert actual == sorted(expected), f"label mismatch at v{v + 1}"

    def test_hpspc_reproduces_table(self, paper_graph, paper_order):
        index = hpspc_index(paper_graph, paper_order)
        for v, expected in TABLE_II.items():
            actual = sorted(
                (entry.hub, entry.dist, entry.count) for entry in index.label(v)
            )
            assert actual == sorted(expected)

    def test_total_label_count_matches_table(self, built):
        assert built.total_entries() == sum(len(lst) for lst in TABLE_II.values())


class TestExample1:
    def test_spc_v10_v7(self, built):
        result = spc_query(built, 9, 6)
        assert result.dist == 3
        assert result.count == 4

    def test_example_matches_bfs(self, paper_graph):
        assert spc_pair(paper_graph, 9, 6) == (3, 4)

    def test_common_hubs_are_v1_and_v7(self, built):
        hubs_v10 = {entry.hub for entry in built.label(9)}
        hubs_v7 = {entry.hub for entry in built.label(6)}
        assert hubs_v10 & hubs_v7 == {0, 6}  # v1 and v7


class TestIntroductionFigure1:
    """Figure 1's motivating claim: t2 is 'more relevant' to s than t1."""

    def test_equal_distance_different_counts(self):
        # Graph H: s connects to t1 via one midpoint, to t2 via three.
        from repro.graph.graph import Graph

        #      v1
        # t1 - s  - v2 - t2   with v1, v2, v3 all bridging s and t2
        #      v3
        edges = [("s", "m"), ("m", "t1"),
                 ("s", "v1"), ("s", "v2"), ("s", "v3"),
                 ("v1", "t2"), ("v2", "t2"), ("v3", "t2")]
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder()
        b.add_edges(edges)
        g, names = b.build()
        ids = {name: i for i, name in enumerate(names)}
        from repro.ordering.degree import degree_order

        index = pspc_index(g, degree_order(g))
        to_t1 = spc_query(index, ids["s"], ids["t1"])
        to_t2 = spc_query(index, ids["s"], ids["t2"])
        assert to_t1.dist == to_t2.dist == 2
        assert to_t1.count == 1
        assert to_t2.count == 3
